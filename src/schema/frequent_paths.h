#ifndef WEBRE_SCHEMA_FREQUENT_PATHS_H_
#define WEBRE_SCHEMA_FREQUENT_PATHS_H_

#include <cstddef>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "concepts/constraints.h"
#include "schema/majority_schema.h"
#include "schema/path_extractor.h"
#include "xml/node.h"

namespace webre {

/// Thresholds and pruning knobs for frequent-path discovery (§3.2).
struct MiningOptions {
  /// support(p) >= supThreshold for p to be frequent.
  double sup_threshold = 0.45;
  /// supportRatio(p) >= ratioThreshold for p to be frequent.
  double ratio_threshold = 0.4;
  /// repThreshold for the repetitive-elements rule; the paper found 3
  /// useful ("a fact that also has been observed in [Xtract]").
  size_t rep_threshold = 3;
  /// Optional concept constraints; paths violating them are pruned at
  /// insertion, shrinking the explored search space (§4.2). Not owned;
  /// may be null.
  const ConstraintSet* constraints = nullptr;
};

/// Counters reported by the miner for the §4.2 search-space experiment.
struct MiningStats {
  /// Label-path insertions offered (per document, deduplicated).
  size_t paths_offered = 0;
  /// Paths rejected by the constraint set before touching the trie.
  size_t paths_pruned_by_constraints = 0;
  /// Trie nodes materialized — "the actual number of nodes explored"
  /// since zero-support label paths are never created.
  size_t trie_nodes = 0;
  /// Nodes of the discovered schema (frequent paths).
  size_t frequent_paths = 0;
};

/// Discovers a majority schema from a stream of XML documents.
///
/// Usage:
///   FrequentPathMiner miner(options);
///   for (const auto& doc : docs) miner.AddDocument(*doc);
///   MajoritySchema schema = miner.Discover();
///
/// AddDocument runs one tree walk (ExtractPaths) and one trie update per
/// distinct path — linear in document size, which is what makes the
/// paper's Figure 5 scalability linear in nodes/concept nodes.
class FrequentPathMiner {
 public:
  explicit FrequentPathMiner(MiningOptions options = {});
  ~FrequentPathMiner();

  FrequentPathMiner(const FrequentPathMiner&) = delete;
  FrequentPathMiner& operator=(const FrequentPathMiner&) = delete;

  /// Adds one document's paths to the search space S.
  void AddDocument(const Node& root);
  /// Adds pre-extracted paths (for callers that already walked the
  /// tree). When the DocumentPaths carries the dense parent_index /
  /// leaf_name view (ExtractPaths always fills it), the trie is updated
  /// by NameId with no string hashing at all.
  void AddDocumentPaths(const DocumentPaths& paths);

  /// Folds another miner's search space into this one. All per-path
  /// statistics are order-independent sums, so merging per-shard miners
  /// yields exactly the trie a single miner fed with every document
  /// would hold — this is what makes repository-side discovery
  /// shard-count invariant. `other` is left untouched.
  void MergeFrom(const FrequentPathMiner& other);

  /// Number of documents added.
  size_t document_count() const { return document_count_; }

  /// Counters accumulated so far (trie_nodes/frequent_paths filled by
  /// Discover).
  const MiningStats& stats() const { return stats_; }

  /// Computes the majority schema under the current thresholds. May be
  /// called repeatedly (e.g. with adjusted thresholds via
  /// mutable_options) without re-adding documents.
  MajoritySchema Discover();

  MiningOptions& mutable_options() { return options_; }

  /// Trie nodes materialized so far (the §4.2 search-space measure,
  /// excluding the sentinel root). Maintained incrementally so callers
  /// do not need a Discover() pass to read it.
  size_t trie_node_count() const { return trie_node_count_; }

 private:
  struct TrieNode;

  void BuildSchemaNode(const TrieNode& trie, double parent_support,
                       LabelPath& path, SchemaNode& out) const;

  MiningOptions options_;
  std::unique_ptr<TrieNode> root_;
  size_t document_count_ = 0;
  size_t trie_node_count_ = 0;
  MiningStats stats_;
};

/// Convenience baselines (§1, §3.1): the upper-bound Data Guide keeps
/// every path that occurs in at least one document; the lower-bound
/// schema keeps only paths occurring in all documents.
MajoritySchema DiscoverDataGuide(FrequentPathMiner& miner);
MajoritySchema DiscoverLowerBound(FrequentPathMiner& miner);

}  // namespace webre

#endif  // WEBRE_SCHEMA_FREQUENT_PATHS_H_
