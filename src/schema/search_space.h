#ifndef WEBRE_SCHEMA_SEARCH_SPACE_H_
#define WEBRE_SCHEMA_SEARCH_SPACE_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "concepts/concept.h"
#include "concepts/constraints.h"

namespace webre {

/// The §4.2 search-space accounting: how many candidate label paths a
/// schema-discovery pass would have to consider.
struct SearchSpaceReport {
  /// |Con|.
  size_t concept_count = 0;
  /// Maximum concept level enumerated (levels below the root).
  size_t max_level = 0;
  /// The paper's headline figure for exhaustive enumeration
  /// ("24^5 - 1 = 7962623 nodes"): |Con|^(max_level + 2) - 1.
  uint64_t exhaustive_paper_formula = 0;
  /// Candidate nodes in an actual unconstrained enumeration tree: the
  /// root plus every sequence of up to max_level concept names,
  /// 1 + sum_{k=1..max_level} |Con|^k.
  uint64_t exhaustive_enumerated = 0;
  /// Candidate nodes surviving the constraint set (the paper reports
  /// 1871 for the resume constraints).
  uint64_t constrained = 0;
};

/// Enumerates the candidate label-path space for schema discovery under
/// `constraints` (depth-first, root label fixed) and reports its size
/// alongside the unconstrained figures. `max_level` is the deepest
/// concept level enumerated; when `constraints.max_level()` is set it
/// caps the enumeration as well.
SearchSpaceReport AnalyzeSearchSpace(const ConceptSet& concepts,
                                     const ConstraintSet& constraints,
                                     const std::string& root_label,
                                     size_t max_level);

}  // namespace webre

#endif  // WEBRE_SCHEMA_SEARCH_SPACE_H_
