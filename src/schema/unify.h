#ifndef WEBRE_SCHEMA_UNIFY_H_
#define WEBRE_SCHEMA_UNIFY_H_

#include <string>
#include <vector>

#include "schema/majority_schema.h"

namespace webre {

/// Report of one unified element name.
struct UnifiedGroup {
  std::string label;
  /// Schema positions the label occurred at.
  size_t occurrences = 0;
  /// Minimum pairwise Jaccard similarity of the occurrences' child
  /// label sets before unification.
  double similarity = 0.0;
  /// Children after unification.
  size_t merged_children = 0;
};

/// Result of UnifySchema.
struct UnificationReport {
  std::vector<UnifiedGroup> unified;
};

/// The optional unification step of §3.2 ("similarly structured
/// components in a schema discovered by this approach can be further
/// unified", detailed in [13]): element names occurring at several
/// schema positions with sufficiently similar child structures are given
/// one shared structure — the union of their children.
///
/// Two occurrences are similar when the Jaccard index of their child
/// label sets is at least `min_similarity`; a label is unified only if
/// *every* pair of its non-leaf occurrences qualifies (leaf occurrences
/// always join an otherwise-unifiable group — a leaf is the degenerate
/// "same structure, fewer details"). Unification makes the later DTD
/// derivation exact instead of a lossy homonym merge: every occurrence
/// of the element then genuinely has the declared content model.
///
/// Child statistics: a child kept from several occurrences keeps the
/// copy with the highest doc_count (the best-supported estimate of its
/// ordering/repetition statistics); children missing from an occurrence
/// are copied in.
UnificationReport UnifySchema(MajoritySchema& schema,
                              double min_similarity = 0.5);

}  // namespace webre

#endif  // WEBRE_SCHEMA_UNIFY_H_
