#include "schema/unify.h"

#include <algorithm>
#include <map>
#include <set>

namespace webre {
namespace {

void CollectByLabel(
    const SchemaNode& node,
    std::map<std::string, std::vector<const SchemaNode*>>& index) {
  index[node.label].push_back(&node);
  for (const SchemaNode& child : node.children) {
    CollectByLabel(child, index);
  }
}

std::set<std::string> ChildLabels(const SchemaNode& node) {
  std::set<std::string> labels;
  for (const SchemaNode& child : node.children) labels.insert(child.label);
  return labels;
}

double Jaccard(const std::set<std::string>& a,
               const std::set<std::string>& b) {
  if (a.empty() && b.empty()) return 1.0;
  size_t inter = 0;
  for (const std::string& x : a) inter += b.count(x);
  const size_t uni = a.size() + b.size() - inter;
  return static_cast<double>(inter) / static_cast<double>(uni);
}

// Applies the unified child lists top-down. `on_path` prevents a label
// from re-expanding below itself (possible once child lists are shared
// across positions), which would otherwise build an infinite tree.
void Apply(SchemaNode& node,
           const std::map<std::string, std::vector<SchemaNode>>& merged,
           std::set<std::string>& on_path) {
  auto it = merged.find(node.label);
  const bool expand = it != merged.end() && on_path.count(node.label) == 0;
  if (expand) node.children = it->second;
  on_path.insert(node.label);
  for (SchemaNode& child : node.children) {
    Apply(child, merged, on_path);
  }
  on_path.erase(node.label);
}

}  // namespace

UnificationReport UnifySchema(MajoritySchema& schema,
                              double min_similarity) {
  UnificationReport report;
  if (schema.empty()) return report;

  // Phase 1 (const): find unifiable labels and compute their merged
  // child lists as values.
  std::map<std::string, std::vector<const SchemaNode*>> by_label;
  CollectByLabel(schema.root(), by_label);

  std::map<std::string, std::vector<SchemaNode>> merged_children;
  for (const auto& [label, occurrences] : by_label) {
    if (occurrences.size() < 2) continue;
    std::vector<const SchemaNode*> structured;
    for (const SchemaNode* node : occurrences) {
      if (!node->children.empty()) structured.push_back(node);
    }
    if (structured.empty()) continue;  // all leaves: nothing to unify

    double min_pairwise = 1.0;
    for (size_t i = 0; i < structured.size(); ++i) {
      for (size_t j = i + 1; j < structured.size(); ++j) {
        min_pairwise = std::min(
            min_pairwise, Jaccard(ChildLabels(*structured[i]),
                                  ChildLabels(*structured[j])));
      }
    }
    if (min_pairwise < min_similarity) continue;

    // Union of children, ordered by the best-supported occurrence with
    // novel children appended; per child label the copy with the larger
    // doc_count wins (its ordering/repetition statistics rest on more
    // evidence).
    const SchemaNode* anchor = *std::max_element(
        structured.begin(), structured.end(),
        [](const SchemaNode* a, const SchemaNode* b) {
          return a->doc_count < b->doc_count;
        });
    std::vector<SchemaNode> merged = anchor->children;
    auto find_merged = [&](const std::string& child_label) -> SchemaNode* {
      for (SchemaNode& m : merged) {
        if (m.label == child_label) return &m;
      }
      return nullptr;
    };
    for (const SchemaNode* node : structured) {
      for (const SchemaNode& child : node->children) {
        SchemaNode* existing = find_merged(child.label);
        if (existing == nullptr) {
          merged.push_back(child);
        } else if (child.doc_count > existing->doc_count) {
          *existing = child;
        }
      }
    }
    report.unified.push_back(UnifiedGroup{label, occurrences.size(),
                                          min_pairwise, merged.size()});
    merged_children.emplace(label, std::move(merged));
  }

  // Phase 2: rebuild the tree with the shared structures.
  if (!merged_children.empty()) {
    std::set<std::string> on_path;
    Apply(schema.mutable_root(), merged_children, on_path);
  }
  return report;
}

}  // namespace webre
