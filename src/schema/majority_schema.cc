#include "schema/majority_schema.h"

#include <cstdio>

namespace webre {

const SchemaNode* SchemaNode::FindChild(std::string_view label) const {
  for (const SchemaNode& child : children) {
    if (child.label == label) return &child;
  }
  return nullptr;
}

namespace {

size_t CountNodes(const SchemaNode& node) {
  size_t count = 1;
  for (const SchemaNode& child : node.children) count += CountNodes(child);
  return count;
}

void CollectPaths(const SchemaNode& node, LabelPath& prefix,
                  std::vector<LabelPath>& out) {
  prefix.push_back(node.label);
  out.push_back(prefix);
  for (const SchemaNode& child : node.children) {
    CollectPaths(child, prefix, out);
  }
  prefix.pop_back();
}

void Render(const SchemaNode& node, size_t depth, std::string& out) {
  out.append(depth * 2, ' ');
  out.append(node.label);
  char buf[96];
  std::snprintf(buf, sizeof(buf),
                "  [sup=%.2f ratio=%.2f docs=%zu rep=%.2f]", node.support,
                node.support_ratio, node.doc_count, node.rep_fraction);
  out.append(buf);
  out.push_back('\n');
  for (const SchemaNode& child : node.children) {
    Render(child, depth + 1, out);
  }
}

}  // namespace

size_t MajoritySchema::NodeCount() const {
  if (empty()) return 0;
  return CountNodes(root_);
}

const SchemaNode* MajoritySchema::Find(const LabelPath& path) const {
  if (empty() || path.empty() || path[0] != root_.label) return nullptr;
  const SchemaNode* node = &root_;
  for (size_t i = 1; i < path.size(); ++i) {
    node = node->FindChild(path[i]);
    if (node == nullptr) return nullptr;
  }
  return node;
}

std::vector<LabelPath> MajoritySchema::AllPaths() const {
  std::vector<LabelPath> out;
  if (empty()) return out;
  LabelPath prefix;
  CollectPaths(root_, prefix, out);
  return out;
}

std::string MajoritySchema::ToString() const {
  std::string out;
  if (!empty()) Render(root_, 0, out);
  return out;
}

}  // namespace webre
