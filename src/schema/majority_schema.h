#ifndef WEBRE_SCHEMA_MAJORITY_SCHEMA_H_
#define WEBRE_SCHEMA_MAJORITY_SCHEMA_H_

#include <cstddef>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "schema/label_path.h"

namespace webre {

/// One node of a discovered schema tree. The tree TF spanned by the set
/// F of frequent paths (§3.3), annotated with the statistics the DTD
/// derivation rules need.
struct SchemaNode {
  std::string label;
  /// Documents containing this label path.
  size_t doc_count = 0;
  /// support(p) = freq(p, S) / |DXML|.
  double support = 0.0;
  /// supportRatio(p) = support(p) / support(parent(p)); 1 for the root.
  double support_ratio = 1.0;
  /// Average child position of this element under its parent (ordering
  /// rule input); 0 for the root.
  double avg_position = 0.0;
  /// mult(e): fraction of documents containing the parent path in which
  /// this element is repetitive (max sibling multiplicity >=
  /// repThreshold).
  double rep_fraction = 0.0;
  /// Children, sorted by the ordering rule (ascending avg_position).
  std::vector<SchemaNode> children;

  /// Finds the direct child labelled `label`, or null.
  const SchemaNode* FindChild(std::string_view label) const;
};

/// A majority schema: the tree of frequent label paths discovered from a
/// set of XML documents (§3). Depending on the thresholds used this same
/// type also represents the two baseline schemas the paper contrasts
/// with — a Data Guide (supThreshold→0: every path that occurs anywhere)
/// and a lower-bound schema (supThreshold=1: paths occurring in *every*
/// document).
class MajoritySchema {
 public:
  MajoritySchema() = default;
  explicit MajoritySchema(SchemaNode root) : root_(std::move(root)) {}

  const SchemaNode& root() const { return root_; }
  SchemaNode& mutable_root() { return root_; }

  /// True when no schema was discovered (no documents / nothing
  /// frequent).
  bool empty() const { return root_.label.empty(); }

  /// Total number of schema nodes (= frequent paths), including the
  /// root.
  size_t NodeCount() const;

  /// Returns the node reached by `path` (root-first), or null.
  const SchemaNode* Find(const LabelPath& path) const;

  /// True iff `path` (root-first) is a frequent path of this schema.
  bool ContainsPath(const LabelPath& path) const { return Find(path) != nullptr; }

  /// All frequent paths, root-first, in pre-order.
  std::vector<LabelPath> AllPaths() const;

  /// Indented tree rendering with support annotations, for debugging and
  /// example programs.
  std::string ToString() const;

 private:
  SchemaNode root_;
};

}  // namespace webre

#endif  // WEBRE_SCHEMA_MAJORITY_SCHEMA_H_
