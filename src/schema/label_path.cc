#include "schema/label_path.h"

namespace webre {

std::string JoinLabelPath(const LabelPath& path) {
  std::string out;
  for (size_t i = 0; i < path.size(); ++i) {
    if (i > 0) out.push_back('/');
    out.append(path[i]);
  }
  return out;
}

LabelPath SplitLabelPath(std::string_view joined) {
  LabelPath path;
  std::string current;
  for (char c : joined) {
    if (c == '/') {
      if (!current.empty()) path.push_back(std::move(current));
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  if (!current.empty()) path.push_back(std::move(current));
  return path;
}

}  // namespace webre
