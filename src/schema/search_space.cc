#include "schema/search_space.h"

#include <vector>

namespace webre {
namespace {

uint64_t Pow(uint64_t base, size_t exp) {
  uint64_t result = 1;
  for (size_t i = 0; i < exp; ++i) result *= base;
  return result;
}

uint64_t CountConstrained(const ConceptSet& concepts,
                          const ConstraintSet& constraints,
                          std::vector<std::string>& path, size_t max_level) {
  uint64_t count = 1;  // the node ending this path
  const size_t next_level = path.size();  // root is path[0] at level 0
  if (next_level > max_level) return count;
  for (size_t i = 0; i < concepts.size(); ++i) {
    path.push_back(concepts.at(i).name);
    if (constraints.PathAllowed(path)) {
      count += CountConstrained(concepts, constraints, path, max_level);
    }
    path.pop_back();
  }
  return count;
}

}  // namespace

SearchSpaceReport AnalyzeSearchSpace(const ConceptSet& concepts,
                                     const ConstraintSet& constraints,
                                     const std::string& root_label,
                                     size_t max_level) {
  SearchSpaceReport report;
  report.concept_count = concepts.size();
  if (constraints.max_level() > 0 && constraints.max_level() < max_level) {
    max_level = constraints.max_level();
  }
  report.max_level = max_level;

  const uint64_t n = concepts.size();
  report.exhaustive_paper_formula = Pow(n, max_level + 2) - 1;
  report.exhaustive_enumerated = 1;
  for (size_t k = 1; k <= max_level; ++k) {
    report.exhaustive_enumerated += Pow(n, k);
  }

  std::vector<std::string> path = {root_label};
  report.constrained =
      CountConstrained(concepts, constraints, path, max_level);
  return report;
}

}  // namespace webre
