#include "schema/sequence_patterns.h"

#include <algorithm>
#include <map>

namespace webre {

std::string SequencePattern::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < group.size(); ++i) {
    if (i > 0) out.append(", ");
    out.append(group[i]);
  }
  out.append(")+");
  return out;
}

ContentParticle SequencePattern::ToParticle() const {
  std::vector<ContentParticle> members;
  members.reserve(group.size());
  for (const std::string& label : group) {
    members.push_back(ContentParticle::Element(label));
  }
  return ContentParticle::Sequence(std::move(members), Occurrence::kPlus);
}

namespace {

// True when `sequence` is >= 1 whole copies of `unit`.
bool IsRepetitionOf(const std::vector<std::string>& sequence,
                    const std::vector<std::string>& unit) {
  if (unit.empty() || sequence.empty()) return false;
  if (sequence.size() % unit.size() != 0) return false;
  for (size_t i = 0; i < sequence.size(); ++i) {
    if (sequence[i] != unit[i % unit.size()]) return false;
  }
  return true;
}

}  // namespace

std::optional<SequencePattern> DetectRepeatingGroup(
    const std::vector<std::vector<std::string>>& sequences,
    double min_coverage, double min_multi_fraction) {
  if (sequences.empty()) return std::nullopt;

  // Candidate units: for each period p, the most common leading p-gram.
  // Units are tried smallest-first so (a,b)+ beats (a,b,a,b)+.
  const size_t max_period = 8;
  for (size_t p = 1; p <= max_period; ++p) {
    // Vote for the dominant leading unit of length p.
    std::map<std::vector<std::string>, size_t> votes;
    for (const auto& sequence : sequences) {
      if (sequence.size() < p) continue;
      std::vector<std::string> unit(sequence.begin(),
                                    sequence.begin() +
                                        static_cast<ptrdiff_t>(p));
      ++votes[std::move(unit)];
    }
    if (votes.empty()) continue;
    const auto best = std::max_element(
        votes.begin(), votes.end(),
        [](const auto& a, const auto& b) { return a.second < b.second; });
    const std::vector<std::string>& unit = best->first;
    // A unit repeating inside itself (e.g. (a,a)) reduces to a smaller
    // period already tried; skip to keep units primitive.
    bool primitive = true;
    for (size_t q = 1; q < p; ++q) {
      if (p % q == 0 && IsRepetitionOf(unit, std::vector<std::string>(
                                                 unit.begin(),
                                                 unit.begin() +
                                                     static_cast<ptrdiff_t>(
                                                         q)))) {
        primitive = false;
        break;
      }
    }
    if (!primitive) continue;

    size_t covered = 0;
    size_t multi = 0;
    double repeats = 0.0;
    for (const auto& sequence : sequences) {
      if (!IsRepetitionOf(sequence, unit)) continue;
      ++covered;
      const size_t k = sequence.size() / unit.size();
      repeats += static_cast<double>(k);
      if (k >= 2) ++multi;
    }
    const double coverage = static_cast<double>(covered) /
                            static_cast<double>(sequences.size());
    if (coverage < min_coverage || covered == 0) continue;
    const double multi_fraction =
        static_cast<double>(multi) / static_cast<double>(covered);
    if (multi_fraction < min_multi_fraction) continue;

    SequencePattern pattern;
    pattern.group = unit;
    pattern.coverage = coverage;
    pattern.avg_repeats = repeats / static_cast<double>(covered);
    return pattern;
  }
  return std::nullopt;
}

namespace {

void Collect(const Node& node, const LabelPath& parent_path, size_t depth,
             std::vector<std::vector<std::string>>& out) {
  if (node.name() != parent_path[depth]) return;
  if (depth + 1 == parent_path.size()) {
    std::vector<std::string> sequence;
    for (size_t i = 0; i < node.child_count(); ++i) {
      const Node* child = node.child(i);
      if (child->is_element()) sequence.emplace_back(child->name());
    }
    out.push_back(std::move(sequence));
    return;
  }
  for (size_t i = 0; i < node.child_count(); ++i) {
    const Node* child = node.child(i);
    if (child->is_element()) {
      Collect(*child, parent_path, depth + 1, out);
    }
  }
}

}  // namespace

std::vector<std::vector<std::string>> CollectChildSequences(
    const Node& root, const LabelPath& parent_path) {
  std::vector<std::vector<std::string>> out;
  if (parent_path.empty() || !root.is_element()) return out;
  Collect(root, parent_path, 0, out);
  return out;
}

}  // namespace webre
