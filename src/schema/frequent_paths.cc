#include "schema/frequent_paths.h"

#include <algorithm>
#include <string>
#include <string_view>
#include <utility>

#include "xml/name_table.h"

namespace webre {

/// The search-space trie is keyed on interned NameIds: child lookup is
/// an integer map probe and merging two tries never touches a string.
/// Label strings are resolved from the global NameTable only when a
/// schema node is materialized or a constraint set must be consulted.
struct FrequentPathMiner::TrieNode {
  NameId label = kInvalidNameId;  // kInvalidNameId marks the sentinel
  size_t doc_count = 0;
  size_t rep_doc_count = 0;
  double position_sum = 0.0;
  size_t position_count = 0;
  std::map<NameId, std::unique_ptr<TrieNode>> children;
};

namespace {

std::string_view LabelOf(NameId id) {
  return id == kInvalidNameId ? std::string_view()
                              : NameTable::Global().NameOf(id);
}

}  // namespace

FrequentPathMiner::FrequentPathMiner(MiningOptions options)
    : options_(options), root_(std::make_unique<TrieNode>()) {}

FrequentPathMiner::~FrequentPathMiner() = default;

void FrequentPathMiner::AddDocument(const Node& root) {
  AddDocumentPaths(ExtractPaths(root));
}

void FrequentPathMiner::AddDocumentPaths(const DocumentPaths& paths) {
  ++document_count_;
  // ExtractPaths fills the statistics vectors parallel to `paths`;
  // hand-built DocumentPaths may omit them.
  const size_t n = paths.paths.size();
  const bool have_mult = paths.max_multiplicity.size() == n;
  const bool have_pos =
      paths.position_sum.size() == n && paths.position_count.size() == n;
  const bool have_dense =
      paths.parent_index.size() == n && paths.leaf_name.size() == n;

  // Dense fast path: each path is reached through its parent's already
  // resolved trie node, so an insertion is one map probe instead of a
  // walk over the whole label chain. Resolution is lazy so a path pruned
  // by the constraint set materializes no trie node of its own — exactly
  // the trie shape string-chain insertion produces (intermediate nodes
  // still appear whenever a surviving path runs through them).
  std::vector<TrieNode*> resolved;
  if (have_dense) resolved.assign(n, nullptr);
  auto resolve_chain = [&](size_t pi) -> TrieNode* {
    // Parents precede children in `paths`, so each round the deepest
    // unresolved ancestor of pi is found by following parent links and
    // materialized top-down; each path resolves at most once, keeping
    // the whole feed linear in practice.
    while (resolved[pi] == nullptr) {
      size_t next = pi;
      while (paths.parent_index[next] != DocumentPaths::kNoParentPath &&
             resolved[paths.parent_index[next]] == nullptr) {
        next = paths.parent_index[next];
      }
      TrieNode* parent =
          paths.parent_index[next] == DocumentPaths::kNoParentPath
              ? root_.get()
              : resolved[paths.parent_index[next]];
      const NameId leaf = paths.leaf_name[next];
      std::unique_ptr<TrieNode>& slot = parent->children[leaf];
      if (slot == nullptr) {
        slot = std::make_unique<TrieNode>();
        slot->label = leaf;
        ++trie_node_count_;
      }
      resolved[next] = slot.get();
    }
    return resolved[pi];
  };

  NameTable& names = NameTable::Global();
  for (size_t pi = 0; pi < n; ++pi) {
    const LabelPath& path = paths.paths[pi];
    ++stats_.paths_offered;
    if (options_.constraints != nullptr &&
        !options_.constraints->PathAllowed(path)) {
      ++stats_.paths_pruned_by_constraints;
      continue;
    }
    TrieNode* node = nullptr;
    if (have_dense) {
      node = resolve_chain(pi);
    } else {
      node = root_.get();
      for (const std::string& label : path) {
        const NameId id = names.Intern(label);
        std::unique_ptr<TrieNode>& slot = node->children[id];
        if (slot == nullptr) {
          slot = std::make_unique<TrieNode>();
          slot->label = id;
          ++trie_node_count_;
        }
        node = slot.get();
      }
    }
    ++node->doc_count;

    if (have_mult && paths.max_multiplicity[pi] > 0 &&
        paths.max_multiplicity[pi] >= options_.rep_threshold) {
      ++node->rep_doc_count;
    }
    if (have_pos && paths.position_count[pi] > 0) {
      node->position_sum += paths.position_sum[pi];
      node->position_count += paths.position_count[pi];
    }
  }
}

void FrequentPathMiner::MergeFrom(const FrequentPathMiner& other) {
  document_count_ += other.document_count_;
  stats_.paths_offered += other.stats_.paths_offered;
  stats_.paths_pruned_by_constraints +=
      other.stats_.paths_pruned_by_constraints;
  // Recursion depth equals the deepest stored path, which the parser
  // already bounds; every statistic is a sum, so merge order between
  // shards cannot change the result.
  auto merge = [&](auto&& self, TrieNode& dst, const TrieNode& src) -> void {
    dst.doc_count += src.doc_count;
    dst.rep_doc_count += src.rep_doc_count;
    dst.position_sum += src.position_sum;
    dst.position_count += src.position_count;
    for (const auto& [id, child] : src.children) {
      std::unique_ptr<TrieNode>& slot = dst.children[id];
      if (slot == nullptr) {
        slot = std::make_unique<TrieNode>();
        slot->label = id;
        ++trie_node_count_;
      }
      self(self, *slot, *child);
    }
  };
  merge(merge, *root_, *other.root_);
}

void FrequentPathMiner::BuildSchemaNode(const TrieNode& trie,
                                        double parent_support,
                                        LabelPath& path,
                                        SchemaNode& out) const {
  out.label = std::string(LabelOf(trie.label));
  out.doc_count = trie.doc_count;
  out.support = document_count_ == 0
                    ? 0.0
                    : static_cast<double>(trie.doc_count) /
                          static_cast<double>(document_count_);
  out.support_ratio =
      parent_support <= 0.0 ? 1.0 : out.support / parent_support;
  out.avg_position =
      trie.position_count == 0
          ? 0.0
          : trie.position_sum / static_cast<double>(trie.position_count);
  out.rep_fraction = trie.doc_count == 0
                         ? 0.0
                         : static_cast<double>(trie.rep_doc_count) /
                               static_cast<double>(trie.doc_count);
  for (const auto& [id, child] : trie.children) {
    const double child_support =
        document_count_ == 0
            ? 0.0
            : static_cast<double>(child->doc_count) /
                  static_cast<double>(document_count_);
    const double ratio =
        out.support <= 0.0 ? 1.0 : child_support / out.support;
    // Anti-monotone pruning: a non-frequent prefix kills its subtree
    // ("once a path does not satisfy supThreshold, all its superpaths
    // need not be considered").
    if (child_support < options_.sup_threshold) continue;
    if (ratio < options_.ratio_threshold) continue;
    // Constraints may arrive only at Discover() time (a repository feeds
    // the trie long before DiscoverSchema names a constraint set).
    // Filtering the descent here is equivalent to insertion-time pruning
    // because a path rejected at insertion leaves a zero-count node the
    // support threshold already skips.
    if (options_.constraints != nullptr) {
      path.emplace_back(LabelOf(id));
      const bool allowed = options_.constraints->PathAllowed(path);
      if (!allowed) {
        path.pop_back();
        continue;
      }
      SchemaNode child_schema;
      BuildSchemaNode(*child, out.support, path, child_schema);
      path.pop_back();
      out.children.push_back(std::move(child_schema));
      continue;
    }
    SchemaNode child_schema;
    BuildSchemaNode(*child, out.support, path, child_schema);
    out.children.push_back(std::move(child_schema));
  }
  // Ordering rule (§3.3): children ordered by average child position in
  // the documents containing the parent prefix.
  std::stable_sort(out.children.begin(), out.children.end(),
                   [](const SchemaNode& a, const SchemaNode& b) {
                     if (a.avg_position != b.avg_position) {
                       return a.avg_position < b.avg_position;
                     }
                     return a.label < b.label;
                   });
}

namespace {

size_t CountSchemaNodes(const SchemaNode& node) {
  size_t count = 1;
  for (const SchemaNode& child : node.children) {
    count += CountSchemaNodes(child);
  }
  return count;
}

}  // namespace

MajoritySchema FrequentPathMiner::Discover() {
  stats_.trie_nodes = trie_node_count_;

  if (document_count_ == 0 || root_->children.empty()) {
    stats_.frequent_paths = 0;
    return MajoritySchema();
  }

  // The schema root is the most common document root label; ties break
  // towards the lexicographically smaller label (the order the original
  // string-keyed trie iterated in), so the choice is independent of the
  // NameId interning order.
  std::vector<std::pair<std::string_view, const TrieNode*>> roots;
  roots.reserve(root_->children.size());
  for (const auto& [id, child] : root_->children) {
    if (options_.constraints != nullptr) {
      LabelPath probe;
      probe.emplace_back(LabelOf(id));
      if (!options_.constraints->PathAllowed(probe)) continue;
    }
    roots.emplace_back(LabelOf(id), child.get());
  }
  std::sort(roots.begin(), roots.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  const TrieNode* best = nullptr;
  for (const auto& [label, child] : roots) {
    if (best == nullptr || child->doc_count > best->doc_count) {
      best = child;
    }
  }
  if (best == nullptr) {
    stats_.frequent_paths = 0;
    return MajoritySchema();
  }
  const double root_support = static_cast<double>(best->doc_count) /
                              static_cast<double>(document_count_);
  if (root_support < options_.sup_threshold && options_.sup_threshold > 0) {
    stats_.frequent_paths = 0;
    return MajoritySchema();
  }

  SchemaNode root_schema;
  LabelPath path;
  path.emplace_back(LabelOf(best->label));
  BuildSchemaNode(*best, 0.0, path, root_schema);
  stats_.frequent_paths = CountSchemaNodes(root_schema);
  return MajoritySchema(std::move(root_schema));
}

MajoritySchema DiscoverDataGuide(FrequentPathMiner& miner) {
  MiningOptions saved = miner.mutable_options();
  miner.mutable_options().sup_threshold = 0.0;
  miner.mutable_options().ratio_threshold = 0.0;
  MajoritySchema schema = miner.Discover();
  miner.mutable_options() = saved;
  return schema;
}

MajoritySchema DiscoverLowerBound(FrequentPathMiner& miner) {
  MiningOptions saved = miner.mutable_options();
  miner.mutable_options().sup_threshold = 1.0;
  miner.mutable_options().ratio_threshold = 0.0;
  MajoritySchema schema = miner.Discover();
  miner.mutable_options() = saved;
  return schema;
}

}  // namespace webre
