#include "schema/frequent_paths.h"

#include <algorithm>

namespace webre {

struct FrequentPathMiner::TrieNode {
  std::string label;
  size_t doc_count = 0;
  size_t rep_doc_count = 0;
  double position_sum = 0.0;
  size_t position_count = 0;
  std::map<std::string, std::unique_ptr<TrieNode>> children;
};

FrequentPathMiner::FrequentPathMiner(MiningOptions options)
    : options_(options), root_(std::make_unique<TrieNode>()) {
  root_->label = "#sentinel";
}

FrequentPathMiner::~FrequentPathMiner() = default;

void FrequentPathMiner::AddDocument(const Node& root) {
  AddDocumentPaths(ExtractPaths(root));
}

void FrequentPathMiner::AddDocumentPaths(const DocumentPaths& paths) {
  ++document_count_;
  // ExtractPaths fills the statistics vectors parallel to `paths`;
  // hand-built DocumentPaths may omit them.
  const bool have_mult = paths.max_multiplicity.size() == paths.paths.size();
  const bool have_pos = paths.position_sum.size() == paths.paths.size() &&
                        paths.position_count.size() == paths.paths.size();
  for (size_t pi = 0; pi < paths.paths.size(); ++pi) {
    const LabelPath& path = paths.paths[pi];
    ++stats_.paths_offered;
    if (options_.constraints != nullptr &&
        !options_.constraints->PathAllowed(path)) {
      ++stats_.paths_pruned_by_constraints;
      continue;
    }
    TrieNode* node = root_.get();
    for (const std::string& label : path) {
      std::unique_ptr<TrieNode>& slot = node->children[label];
      if (slot == nullptr) {
        slot = std::make_unique<TrieNode>();
        slot->label = label;
      }
      node = slot.get();
    }
    ++node->doc_count;

    if (have_mult && paths.max_multiplicity[pi] > 0 &&
        paths.max_multiplicity[pi] >= options_.rep_threshold) {
      ++node->rep_doc_count;
    }
    if (have_pos && paths.position_count[pi] > 0) {
      node->position_sum += paths.position_sum[pi];
      node->position_count += paths.position_count[pi];
    }
  }
}

void FrequentPathMiner::BuildSchemaNode(const TrieNode& trie,
                                        double parent_support,
                                        SchemaNode& out) const {
  out.label = trie.label;
  out.doc_count = trie.doc_count;
  out.support = document_count_ == 0
                    ? 0.0
                    : static_cast<double>(trie.doc_count) /
                          static_cast<double>(document_count_);
  out.support_ratio =
      parent_support <= 0.0 ? 1.0 : out.support / parent_support;
  out.avg_position =
      trie.position_count == 0
          ? 0.0
          : trie.position_sum / static_cast<double>(trie.position_count);
  out.rep_fraction = trie.doc_count == 0
                         ? 0.0
                         : static_cast<double>(trie.rep_doc_count) /
                               static_cast<double>(trie.doc_count);
  for (const auto& [label, child] : trie.children) {
    const double child_support =
        document_count_ == 0
            ? 0.0
            : static_cast<double>(child->doc_count) /
                  static_cast<double>(document_count_);
    const double ratio =
        out.support <= 0.0 ? 1.0 : child_support / out.support;
    // Anti-monotone pruning: a non-frequent prefix kills its subtree
    // ("once a path does not satisfy supThreshold, all its superpaths
    // need not be considered").
    if (child_support < options_.sup_threshold) continue;
    if (ratio < options_.ratio_threshold) continue;
    SchemaNode child_schema;
    BuildSchemaNode(*child, out.support, child_schema);
    out.children.push_back(std::move(child_schema));
  }
  // Ordering rule (§3.3): children ordered by average child position in
  // the documents containing the parent prefix.
  std::stable_sort(out.children.begin(), out.children.end(),
                   [](const SchemaNode& a, const SchemaNode& b) {
                     if (a.avg_position != b.avg_position) {
                       return a.avg_position < b.avg_position;
                     }
                     return a.label < b.label;
                   });
}

namespace {

size_t CountSchemaNodes(const SchemaNode& node) {
  size_t count = 1;
  for (const SchemaNode& child : node.children) {
    count += CountSchemaNodes(child);
  }
  return count;
}

}  // namespace

MajoritySchema FrequentPathMiner::Discover() {
  // Count materialized trie nodes (excluding the sentinel).
  stats_.trie_nodes = 0;
  std::vector<const TrieNode*> stack;
  for (const auto& [label, child] : root_->children) {
    stack.push_back(child.get());
  }
  while (!stack.empty()) {
    const TrieNode* node = stack.back();
    stack.pop_back();
    ++stats_.trie_nodes;
    for (const auto& [label, child] : node->children) {
      stack.push_back(child.get());
    }
  }

  if (document_count_ == 0 || root_->children.empty()) {
    stats_.frequent_paths = 0;
    return MajoritySchema();
  }

  // The schema root is the most common document root label.
  const TrieNode* best = nullptr;
  for (const auto& [label, child] : root_->children) {
    if (best == nullptr || child->doc_count > best->doc_count) {
      best = child.get();
    }
  }
  const double root_support = static_cast<double>(best->doc_count) /
                              static_cast<double>(document_count_);
  if (root_support < options_.sup_threshold && options_.sup_threshold > 0) {
    stats_.frequent_paths = 0;
    return MajoritySchema();
  }

  SchemaNode root_schema;
  BuildSchemaNode(*best, 0.0, root_schema);
  stats_.frequent_paths = CountSchemaNodes(root_schema);
  return MajoritySchema(std::move(root_schema));
}

MajoritySchema DiscoverDataGuide(FrequentPathMiner& miner) {
  MiningOptions saved = miner.mutable_options();
  miner.mutable_options().sup_threshold = 0.0;
  miner.mutable_options().ratio_threshold = 0.0;
  MajoritySchema schema = miner.Discover();
  miner.mutable_options() = saved;
  return schema;
}

MajoritySchema DiscoverLowerBound(FrequentPathMiner& miner) {
  MiningOptions saved = miner.mutable_options();
  miner.mutable_options().sup_threshold = 1.0;
  miner.mutable_options().ratio_threshold = 0.0;
  MajoritySchema schema = miner.Discover();
  miner.mutable_options() = saved;
  return schema;
}

}  // namespace webre
