#ifndef WEBRE_STORAGE_CRASH_POINT_H_
#define WEBRE_STORAGE_CRASH_POINT_H_

#include <cstddef>

namespace webre {
namespace storage {

/// Fault-injection hooks for the crash-recovery test matrix
/// (tests/crash_injection_test.cc). The storage layer calls
/// MaybeCrash("name") at every durability-relevant boundary; when the
/// environment variable WEBRE_CRASH_POINT names that point, the process
/// dies instantly via _exit (no destructors, no flushing — the closest
/// userspace approximation of a power cut). In production the armed
/// check is one cached getenv comparison per call site.
///
/// Points whose name ends in ".torn" are special: the caller performs a
/// deliberate partial write first, simulating a crash mid-write, then
/// dies. Everything the recovery path must tolerate — torn records,
/// missing renames, half-truncated WAL sets — is reachable through this
/// list, which the test iterates exhaustively.

/// Exit code of a process killed at a crash point, so the test harness
/// can tell an injected crash from an ordinary failure.
inline constexpr int kCrashExitCode = 87;

/// Every crash point the storage layer honors, for test iteration.
/// Order mirrors the write paths: WAL append first, then checkpoint.
extern const char* const kCrashPoints[];
extern const size_t kCrashPointCount;

/// True iff WEBRE_CRASH_POINT is set to exactly `point`. The
/// environment is read once per process (first call).
bool CrashPointArmed(const char* point);

/// Dies via _exit(kCrashExitCode) without running any cleanup.
[[noreturn]] void CrashNow();

/// CrashNow() iff `point` is armed; otherwise a no-op.
inline void MaybeCrash(const char* point) {
  if (CrashPointArmed(point)) CrashNow();
}

}  // namespace storage
}  // namespace webre

#endif  // WEBRE_STORAGE_CRASH_POINT_H_
