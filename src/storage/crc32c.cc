#include "storage/crc32c.h"

#if defined(__x86_64__)
#include <cpuid.h>
#include <nmmintrin.h>
#endif

namespace webre {
namespace storage {
namespace {

/// Slice-by-4 lookup tables, computed once at first use. Table [0] is
/// the classic byte-at-a-time table; [1..3] fold 4 input bytes per
/// iteration — the portable fallback when the CPU has no CRC32
/// instruction.
struct Tables {
  uint32_t t[4][256];

  Tables() {
    constexpr uint32_t kPoly = 0x82F63B78u;  // 0x1EDC6F41 reflected
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1) ? kPoly : 0);
      }
      t[0][i] = crc;
    }
    for (uint32_t i = 0; i < 256; ++i) {
      t[1][i] = (t[0][i] >> 8) ^ t[0][t[0][i] & 0xFF];
      t[2][i] = (t[1][i] >> 8) ^ t[0][t[1][i] & 0xFF];
      t[3][i] = (t[2][i] >> 8) ^ t[0][t[2][i] & 0xFF];
    }
  }
};

const Tables& GetTables() {
  static const Tables tables;
  return tables;
}

uint32_t Crc32cSoftware(const void* data, size_t size, uint32_t crc) {
  const Tables& tables = GetTables();
  const unsigned char* p = static_cast<const unsigned char*>(data);
  while (size >= 4) {
    crc ^= static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
           (static_cast<uint32_t>(p[2]) << 16) |
           (static_cast<uint32_t>(p[3]) << 24);
    crc = tables.t[3][crc & 0xFF] ^ tables.t[2][(crc >> 8) & 0xFF] ^
          tables.t[1][(crc >> 16) & 0xFF] ^ tables.t[0][crc >> 24];
    p += 4;
    size -= 4;
  }
  while (size-- > 0) {
    crc = (crc >> 8) ^ tables.t[0][(crc ^ *p++) & 0xFF];
  }
  return crc;
}

#if defined(__x86_64__)

/// SSE4.2 path: the CRC32 instruction implements exactly this
/// (Castagnoli) polynomial, 8 input bytes per ~1-cycle-throughput op —
/// an order of magnitude over slice-by-4, which matters because every
/// snapshot open checksums the whole image before serving from it.
__attribute__((target("sse4.2"))) uint32_t Crc32cHardware(const void* data,
                                                          size_t size,
                                                          uint32_t crc) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  uint64_t crc64 = crc;
  while (size >= 8) {
    uint64_t chunk;
    __builtin_memcpy(&chunk, p, 8);
    crc64 = _mm_crc32_u64(crc64, chunk);
    p += 8;
    size -= 8;
  }
  crc = static_cast<uint32_t>(crc64);
  while (size-- > 0) {
    crc = _mm_crc32_u8(crc, *p++);
  }
  return crc;
}

bool HasSse42() {
  unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
  if (__get_cpuid(1, &eax, &ebx, &ecx, &edx) == 0) return false;
  return (ecx & bit_SSE4_2) != 0;
}

#endif  // __x86_64__

using CrcFn = uint32_t (*)(const void*, size_t, uint32_t);

CrcFn PickImplementation() {
#if defined(__x86_64__)
  if (HasSse42()) return &Crc32cHardware;
#endif
  return &Crc32cSoftware;
}

}  // namespace

uint32_t Crc32c(const void* data, size_t size, uint32_t seed) {
  static const CrcFn impl = PickImplementation();
  return ~impl(data, size, ~seed);
}

}  // namespace storage
}  // namespace webre
