#include "storage/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "storage/crash_point.h"
#include "storage/crc32c.h"
#include "storage/format.h"

namespace webre {
namespace storage {
namespace {

constexpr char kWalMagic[8] = {'W', 'B', 'R', 'E', 'W', 'A', 'L', '1'};

// Per-record sanity caps: a frame claiming more than this is corruption
// (or an attack), not data — parsing stops there. FlatDoc itself caps
// element_count at 2^28; a block for that many elements with text would
// exceed this too, but real documents are orders of magnitude smaller
// and a WAL that large would have failed long before.
constexpr uint32_t kMaxRecordBytes = 1u << 30;

Status ErrnoStatus(const char* what, const std::string& path) {
  return Status::Internal(std::string(what) + " failed on " + path + ": " +
                          std::strerror(errno));
}

Status WriteAllFd(int fd, std::string_view bytes, const std::string& path) {
  size_t done = 0;
  while (done < bytes.size()) {
    const ssize_t n = ::write(fd, bytes.data() + done, bytes.size() - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("write", path);
    }
    done += static_cast<size_t>(n);
  }
  return Status::Ok();
}

}  // namespace

std::string EncodeWalHeader(uint64_t seed_hash) {
  std::string out;
  out.append(kWalMagic, sizeof(kWalMagic));
  PutU32(out, kWalVersion);
  PutU32(out, 0);  // reserved
  PutU64(out, seed_hash);
  return out;
}

Status CheckWalHeader(std::string_view file, uint64_t seed_hash) {
  if (file.size() < kWalHeaderSize) {
    return Status::InvalidArgument("WAL shorter than its header");
  }
  if (std::memcmp(file.data(), kWalMagic, sizeof(kWalMagic)) != 0) {
    return Status::FailedPrecondition("not a WAL file (bad magic)");
  }
  ByteReader reader(file.substr(sizeof(kWalMagic)));
  uint32_t version = 0;
  uint32_t reserved = 0;
  uint64_t stored_hash = 0;
  Status s = reader.ReadU32(version);
  if (s.ok()) s = reader.ReadU32(reserved);
  if (s.ok()) s = reader.ReadU64(stored_hash);
  if (!s.ok()) return s;
  if (version != kWalVersion) {
    return Status::FailedPrecondition("unsupported WAL version " +
                                      std::to_string(version));
  }
  if (stored_hash != seed_hash) {
    return Status::FailedPrecondition(
        "WAL written against a different seeded name vocabulary");
  }
  return Status::Ok();
}

std::string EncodeWalRecord(uint64_t doc_id, const FlatDoc& flat) {
  // Collect the distinct NameIds the block uses, ascending, so the
  // record is deterministic for a given document.
  std::vector<NameId> ids;
  ids.reserve(16);
  for (uint32_t i = 0; i < flat.element_count(); ++i) {
    ids.push_back(flat.name(i));
  }
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());

  const NameTable& names = NameTable::Global();
  std::string body;
  body.reserve(64 + flat.block_bytes());
  PutU64(body, doc_id);
  PutU32(body, flat.element_count());
  PutU32(body, static_cast<uint32_t>(ids.size()));
  PutU64(body, flat.block_bytes());
  for (NameId id : ids) {
    const std::string_view name = names.NameOf(id);
    PutU32(body, id);
    PutU32(body, static_cast<uint32_t>(name.size()));
    body.append(name);
  }
  body.append(flat.block_data(), flat.block_bytes());

  std::string framed;
  framed.reserve(8 + body.size());
  PutU32(framed, static_cast<uint32_t>(body.size()));
  PutU32(framed, Crc32c(body.data(), body.size()));
  framed.append(body);
  return framed;
}

size_t ParseWalPayload(std::string_view payload,
                       std::vector<WalRecord>& records) {
  size_t valid_end = 0;
  ByteReader reader(payload);
  while (reader.remaining() >= 8) {
    const size_t frame_start = reader.offset();
    uint32_t body_len = 0;
    uint32_t body_crc = 0;
    if (!reader.ReadU32(body_len).ok() || !reader.ReadU32(body_crc).ok()) {
      break;
    }
    if (body_len > kMaxRecordBytes || body_len > reader.remaining()) {
      break;  // torn tail (or garbage length)
    }
    std::string_view body;
    if (!reader.ReadBytes(body_len, body).ok()) break;
    if (Crc32c(body.data(), body.size()) != body_crc) break;

    WalRecord record;
    record.framed = payload.substr(frame_start, 8 + body_len);
    ByteReader br(body);
    uint32_t name_count = 0;
    Status s = br.ReadU64(record.doc_id);
    if (s.ok()) s = br.ReadU32(record.element_count);
    if (s.ok()) s = br.ReadU32(name_count);
    if (s.ok()) s = br.ReadU64(record.block_bytes);
    if (!s.ok()) break;
    bool bad = record.element_count == 0 || name_count > record.element_count;
    record.names.reserve(bad ? 0 : name_count);
    for (uint32_t i = 0; !bad && i < name_count; ++i) {
      uint32_t id = 0;
      uint32_t len = 0;
      std::string_view name;
      if (!br.ReadU32(id).ok() || !br.ReadU32(len).ok() ||
          !br.ReadBytes(len, name).ok()) {
        bad = true;
        break;
      }
      record.names.emplace_back(id, name);
    }
    if (bad) break;
    if (record.block_bytes != br.remaining() ||
        !br.ReadBytes(record.block_bytes, record.block).ok()) {
      break;
    }
    records.push_back(std::move(record));
    valid_end = reader.offset();
  }
  return valid_end;
}

StatusOr<std::unique_ptr<FlatDoc>> DecodeWalDocument(const WalRecord& record) {
  NameTable& names = NameTable::Global();

  // Re-intern the record's dictionary in this process. In the common
  // same-process (or identically-seeded) case every id maps to itself
  // and the block is usable verbatim.
  bool identity = true;
  std::vector<std::pair<NameId, NameId>> remap;  // old → new, old ascending
  remap.reserve(record.names.size());
  for (const auto& [old_id, name] : record.names) {
    NameId new_id;
    try {
      new_id = names.Intern(name);
    } catch (const std::length_error&) {
      return Status::ResourceExhausted("name table full during WAL replay");
    }
    if (!remap.empty() && old_id <= remap.back().first) {
      return Status::InvalidArgument("WAL record dictionary not ascending");
    }
    remap.emplace_back(old_id, new_id);
    identity = identity && old_id == new_id;
  }

  auto block = std::make_unique<char[]>(record.block_bytes);
  std::memcpy(block.get(), record.block.data(), record.block_bytes);

  if (!identity) {
    // The block's leading element_count u32s are its NameIds; rewrite
    // them through the dictionary before validation.
    if (record.block_bytes < size_t{4} * record.element_count) {
      return Status::InvalidArgument("WAL record block too small for names");
    }
    uint32_t* ids = reinterpret_cast<uint32_t*>(block.get());
    for (uint32_t i = 0; i < record.element_count; ++i) {
      const auto it = std::lower_bound(
          remap.begin(), remap.end(), std::make_pair(ids[i], NameId{0}),
          [](const auto& a, const auto& b) { return a.first < b.first; });
      if (it == remap.end() || it->first != ids[i]) {
        return Status::InvalidArgument(
            "WAL record names a NameId missing from its dictionary");
      }
      ids[i] = it->second;
    }
  }

  return FlatDoc::FromOwnedBlock(std::move(block), record.block_bytes,
                                 record.element_count,
                                 static_cast<NameId>(names.size()));
}

StatusOr<std::unique_ptr<WalWriter>> WalWriter::Open(const std::string& path,
                                                     uint64_t seed_hash) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd < 0) return ErrnoStatus("open", path);
  const off_t end = ::lseek(fd, 0, SEEK_END);
  if (end < 0) {
    ::close(fd);
    return ErrnoStatus("lseek", path);
  }
  std::unique_ptr<WalWriter> writer(new WalWriter(path, fd));
  if (end == 0) {
    const std::string header = EncodeWalHeader(seed_hash);
    Status s = WriteAllFd(fd, header, path);
    if (s.ok() && ::fsync(fd) != 0) s = ErrnoStatus("fsync", path);
    if (!s.ok()) return s;
  }
  return writer;
}

WalWriter::~WalWriter() {
  if (fd_ >= 0) ::close(fd_);
}

Status WalWriter::Append(std::string_view record, bool sync) {
  MaybeCrash("wal.append.before_write");
  if (CrashPointArmed("wal.append.torn")) {
    // Simulate a crash mid-write: persist only a prefix of the frame,
    // then die. Recovery must treat the tail as absent.
    const std::string_view torn = record.substr(0, record.size() / 2);
    (void)WriteAllFd(fd_, torn, path_);
    (void)::fsync(fd_);
    CrashNow();
  }
  Status s = WriteAllFd(fd_, record, path_);
  if (!s.ok()) return s;
  MaybeCrash("wal.append.before_sync");
  if (sync && ::fdatasync(fd_) != 0) return ErrnoStatus("fdatasync", path_);
  MaybeCrash("wal.append.after_sync");
  return Status::Ok();
}

Status WalWriter::Truncate() {
  if (::ftruncate(fd_, static_cast<off_t>(kWalHeaderSize)) != 0) {
    return ErrnoStatus("ftruncate", path_);
  }
  if (::fsync(fd_) != 0) return ErrnoStatus("fsync", path_);
  return Status::Ok();
}

}  // namespace storage
}  // namespace webre
