#include "storage/snapshot.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "storage/crash_point.h"
#include "storage/crc32c.h"
#include "storage/format.h"
#include "util/file.h"

namespace webre {
namespace storage {
namespace {

constexpr char kSnapshotMagic[8] = {'W', 'B', 'R', 'E', 'S', 'N', 'P', '1'};
constexpr size_t kSectionEntrySize = 32;
constexpr uint32_t kMaxSections = 16;

struct SectionDesc {
  uint32_t type = 0;
  uint64_t offset = 0;
  uint64_t size = 0;
  uint32_t crc = 0;
};

Status ErrnoStatus(const char* what, const std::string& path) {
  return Status::Internal(std::string(what) + " failed on " + path + ": " +
                          std::strerror(errno));
}

Status WriteAllFd(int fd, std::string_view bytes, const std::string& path) {
  size_t done = 0;
  while (done < bytes.size()) {
    const ssize_t n = ::write(fd, bytes.data() + done, bytes.size() - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("write", path);
    }
    done += static_cast<size_t>(n);
  }
  return Status::Ok();
}

std::string BuildNamesSection(size_t name_count) {
  const NameTable& names = NameTable::Global();
  std::string out;
  PutU64(out, name_count);
  for (size_t i = 0; i < name_count; ++i) {
    const std::string_view name = names.NameOf(static_cast<NameId>(i));
    PutU32(out, static_cast<uint32_t>(name.size()));
    out.append(name);
  }
  PadTo(out, 8);  // later sections' offsets must stay 8-aligned
  return out;
}

std::string BuildDocsSection(const XmlRepository& repo) {
  const size_t doc_count = repo.size();

  // Gather every document's flat form, freezing pointer-mode trees on
  // the fly (the frozen copies live only for the duration of the
  // build; the repository itself is untouched).
  std::vector<std::unique_ptr<FlatDoc>> frozen;
  std::vector<const FlatDoc*> docs(doc_count, nullptr);
  for (DocId id = 0; id < doc_count; ++id) {
    if (const FlatDoc* flat = repo.flat_document(id)) {
      docs[id] = flat;
    } else if (const Node* tree = repo.document(id)) {
      frozen.push_back(FlatDoc::Freeze(*tree));
      docs[id] = frozen.back().get();
    }
  }

  std::string out;
  PutU64(out, doc_count);
  const size_t table_start = out.size();
  out.append(doc_count * 24, '\0');  // filled below
  PadTo(out, 8);
  for (DocId id = 0; id < doc_count; ++id) {
    const FlatDoc* doc = docs[id];
    PadTo(out, 8);
    const uint64_t block_off = out.size();
    uint64_t block_bytes = 0;
    uint32_t element_count = 0;
    if (doc != nullptr) {  // holes cannot occur in a quiescent repo
      block_bytes = doc->block_bytes();
      element_count = doc->element_count();
      out.append(doc->block_data(), doc->block_bytes());
    }
    std::string entry;
    PutU64(entry, block_off);
    PutU64(entry, block_bytes);
    PutU32(entry, element_count);
    PutU32(entry, 0);
    out.replace(table_start + id * 24, 24, entry);
  }
  PadTo(out, 8);
  return out;
}

std::string BuildSummarySection(const XmlRepository& repo) {
  std::string out;
  repo.WithSummary([&out](const PathIndex& summary) {
    PutU64(out, summary.path_count());
    for (uint32_t id = 0; id < summary.path_count(); ++id) {
      const PathIndex::Entry& entry = summary.entry(id);
      PutU32(out, entry.parent);
      PutU32(out, entry.name);
      PutU64(out, entry.docs.size());
      PutU64(out, entry.occurrences.size());
      for (DocId doc : entry.docs) PutU64(out, doc);
      for (const PathOccurrence& occ : entry.occurrences) {
        PutU64(out, occ.doc);
        PutU32(out, occ.pos);
        PutU32(out, 0);
      }
    }
  });
  PadTo(out, 8);
  return out;
}

}  // namespace

uint64_t SeedVocabularyHash() {
  const NameTable& names = NameTable::Global();
  uint64_t hash = 0xcbf29ce484222325ull;  // FNV-1a offset basis
  auto mix = [&hash](const char* data, size_t size) {
    for (size_t i = 0; i < size; ++i) {
      hash ^= static_cast<unsigned char>(data[i]);
      hash *= 0x100000001b3ull;
    }
  };
  const size_t seeds = names.seed_count();
  for (size_t i = 0; i < seeds; ++i) {
    const std::string_view name = names.NameOf(static_cast<NameId>(i));
    mix(name.data(), name.size());
    const char sep = '\0';
    mix(&sep, 1);
  }
  return hash ^ seeds;
}

std::string BuildSnapshotImage(const XmlRepository& repo) {
  const size_t name_count = NameTable::Global().size();
  const std::string sections[3] = {BuildNamesSection(name_count),
                                   BuildDocsSection(repo),
                                   BuildSummarySection(repo)};
  const uint32_t types[3] = {kSectionNames, kSectionDocs, kSectionSummary};

  std::string image;
  image.reserve(kSnapshotHeaderSize + 3 * kSectionEntrySize +
                sections[0].size() + sections[1].size() + sections[2].size() +
                64);
  image.append(kSnapshotMagic, sizeof(kSnapshotMagic));
  PutU32(image, kSnapshotVersion);
  PutU32(image, 3);  // section_count
  PutU64(image, SeedVocabularyHash());
  PutU64(image, repo.size());
  const size_t crc_at = image.size();
  PutU32(image, 0);  // header_crc, patched below
  PutU32(image, 0);  // reserved

  std::string table;
  uint64_t offset = kSnapshotHeaderSize + 3 * kSectionEntrySize;
  for (int i = 0; i < 3; ++i) {
    PutU32(table, types[i]);
    PutU32(table, 0);
    PutU64(table, offset);
    PutU64(table, sections[i].size());
    PutU32(table, Crc32c(sections[i].data(), sections[i].size()));
    PutU32(table, 0);
    offset += sections[i].size();
  }
  image.append(table);
  for (const std::string& section : sections) image.append(section);

  const uint32_t header_crc =
      Crc32c(table.data(), table.size(), Crc32c(image.data(), 32));
  std::string patched;
  PutU32(patched, header_crc);
  image.replace(crc_at, 4, patched);
  return image;
}

Status WriteSnapshotFile(const std::string& dir, std::string_view image) {
  const std::string tmp_path = dir + "/snapshot.tmp";
  const std::string final_path = dir + "/snapshot.webre";

  MaybeCrash("checkpoint.before_tmp");
  const int fd = ::open(tmp_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return ErrnoStatus("open", tmp_path);
  if (CrashPointArmed("checkpoint.tmp.torn")) {
    // Die with only half the image persisted: recovery must ignore the
    // temp file entirely (the rename never happened).
    (void)WriteAllFd(fd, image.substr(0, image.size() / 2), tmp_path);
    (void)::fsync(fd);
    CrashNow();
  }
  Status s = WriteAllFd(fd, image, tmp_path);
  if (!s.ok()) {
    ::close(fd);
    return s;
  }
  MaybeCrash("checkpoint.before_tmp_sync");
  if (::fsync(fd) != 0) {
    ::close(fd);
    return ErrnoStatus("fsync", tmp_path);
  }
  ::close(fd);
  MaybeCrash("checkpoint.before_rename");
  if (::rename(tmp_path.c_str(), final_path.c_str()) != 0) {
    return ErrnoStatus("rename", tmp_path);
  }
  MaybeCrash("checkpoint.before_dir_sync");
  return SyncDir(dir);
}

Status LoadSnapshotImage(std::string_view image, LoadedSnapshot& out) {
  out = LoadedSnapshot{};
  if (image.size() < kSnapshotHeaderSize) {
    return Status::InvalidArgument("snapshot shorter than its header");
  }
  if (std::memcmp(image.data(), kSnapshotMagic, sizeof(kSnapshotMagic)) != 0) {
    return Status::InvalidArgument("not a snapshot file (bad magic)");
  }
  ByteReader header(image.substr(sizeof(kSnapshotMagic)));
  uint32_t version = 0, section_count = 0, header_crc = 0, reserved = 0;
  uint64_t seed_hash = 0, doc_count = 0;
  WEBRE_RETURN_IF_ERROR(header.ReadU32(version));
  WEBRE_RETURN_IF_ERROR(header.ReadU32(section_count));
  WEBRE_RETURN_IF_ERROR(header.ReadU64(seed_hash));
  WEBRE_RETURN_IF_ERROR(header.ReadU64(doc_count));
  WEBRE_RETURN_IF_ERROR(header.ReadU32(header_crc));
  WEBRE_RETURN_IF_ERROR(header.ReadU32(reserved));
  if (version != kSnapshotVersion) {
    return Status::FailedPrecondition("unsupported snapshot version " +
                                      std::to_string(version));
  }
  if (section_count == 0 || section_count > kMaxSections) {
    return Status::InvalidArgument("implausible snapshot section count");
  }
  const size_t table_bytes = size_t{section_count} * kSectionEntrySize;
  if (image.size() - kSnapshotHeaderSize < table_bytes) {
    return Status::InvalidArgument("snapshot truncated in section table");
  }
  const std::string_view table = image.substr(kSnapshotHeaderSize, table_bytes);
  if (Crc32c(table.data(), table.size(), Crc32c(image.data(), 32)) !=
      header_crc) {
    return Status::InvalidArgument("snapshot header checksum mismatch");
  }
  if (seed_hash != SeedVocabularyHash()) {
    return Status::FailedPrecondition(
        "snapshot written against a different seeded name vocabulary");
  }

  // Locate (and checksum) the three known sections. Unknown types are
  // skipped — a future minor revision may append sections old readers
  // ignore.
  std::string_view names_bytes, docs_bytes, summary_bytes;
  bool have[4] = {false, false, false, false};
  ByteReader table_reader(table);
  for (uint32_t i = 0; i < section_count; ++i) {
    uint32_t type = 0, pad = 0, crc = 0, pad2 = 0;
    uint64_t offset = 0, size = 0;
    WEBRE_RETURN_IF_ERROR(table_reader.ReadU32(type));
    WEBRE_RETURN_IF_ERROR(table_reader.ReadU32(pad));
    WEBRE_RETURN_IF_ERROR(table_reader.ReadU64(offset));
    WEBRE_RETURN_IF_ERROR(table_reader.ReadU64(size));
    WEBRE_RETURN_IF_ERROR(table_reader.ReadU32(crc));
    WEBRE_RETURN_IF_ERROR(table_reader.ReadU32(pad2));
    if (offset > image.size() || size > image.size() - offset) {
      return Status::InvalidArgument("snapshot section out of bounds");
    }
    if ((offset & 7) != 0) {
      return Status::InvalidArgument("snapshot section misaligned");
    }
    const std::string_view bytes = image.substr(offset, size);
    if (type != kSectionNames && type != kSectionDocs &&
        type != kSectionSummary) {
      continue;
    }
    if (have[type]) {
      return Status::InvalidArgument("duplicate snapshot section");
    }
    have[type] = true;
    if (Crc32c(bytes.data(), bytes.size()) != crc) {
      return Status::InvalidArgument("snapshot section checksum mismatch");
    }
    if (type == kSectionNames) names_bytes = bytes;
    if (type == kSectionDocs) docs_bytes = bytes;
    if (type == kSectionSummary) summary_bytes = bytes;
  }
  if (!have[kSectionNames] || !have[kSectionDocs] || !have[kSectionSummary]) {
    return Status::InvalidArgument("snapshot missing a required section");
  }

  // NAMES: re-intern the writer's table in id order. In a fresh process
  // (the common case) dynamic ids reproduce exactly and documents can
  // be served as views over the mapping.
  {
    ByteReader reader(names_bytes);
    uint64_t name_count = 0;
    WEBRE_RETURN_IF_ERROR(reader.ReadU64(name_count));
    if (name_count > NameTable::kMaxNames) {
      return Status::InvalidArgument("snapshot names exceed table capacity");
    }
    NameTable& names = NameTable::Global();
    out.name_map.reserve(name_count);
    for (uint64_t i = 0; i < name_count; ++i) {
      uint32_t len = 0;
      std::string_view name;
      WEBRE_RETURN_IF_ERROR(reader.ReadU32(len));
      WEBRE_RETURN_IF_ERROR(reader.ReadBytes(len, name));
      if (name.empty()) {
        return Status::InvalidArgument("snapshot contains an empty name");
      }
      NameId new_id;
      try {
        new_id = names.Intern(name);
      } catch (const std::length_error&) {
        return Status::ResourceExhausted("name table full loading snapshot");
      }
      out.identity_names = out.identity_names && new_id == i;
      out.name_map.push_back(new_id);
    }
    // Only 8-alignment padding may follow the last name.
    std::string_view tail;
    WEBRE_RETURN_IF_ERROR(reader.ReadBytes(reader.remaining(), tail));
    if (tail.size() >= 8 || tail.find_first_not_of('\0') != tail.npos) {
      return Status::InvalidArgument("trailing bytes in snapshot NAMES");
    }
  }

  // DOCS: validate the table; block bytes stay views into the image.
  {
    ByteReader reader(docs_bytes);
    uint64_t stored_count = 0;
    WEBRE_RETURN_IF_ERROR(reader.ReadU64(stored_count));
    if (stored_count != doc_count) {
      return Status::InvalidArgument("snapshot DOCS count disagrees w/header");
    }
    if (stored_count > docs_bytes.size() / 24) {
      return Status::InvalidArgument("snapshot DOCS table out of bounds");
    }
    const size_t table_end = 8 + stored_count * 24;
    out.documents.reserve(stored_count);
    for (uint64_t i = 0; i < stored_count; ++i) {
      uint64_t block_off = 0, block_bytes = 0;
      uint32_t element_count = 0, pad = 0;
      WEBRE_RETURN_IF_ERROR(reader.ReadU64(block_off));
      WEBRE_RETURN_IF_ERROR(reader.ReadU64(block_bytes));
      WEBRE_RETURN_IF_ERROR(reader.ReadU32(element_count));
      WEBRE_RETURN_IF_ERROR(reader.ReadU32(pad));
      if (block_off < table_end || block_off > docs_bytes.size() ||
          block_bytes > docs_bytes.size() - block_off) {
        return Status::InvalidArgument("snapshot document block out of bounds");
      }
      if ((block_off & 7) != 0) {  // FromMappedBlock needs aligned u32s
        return Status::InvalidArgument("snapshot document block misaligned");
      }
      if (element_count == 0) {
        return Status::InvalidArgument("snapshot document with no elements");
      }
      LoadedDocument doc;
      doc.element_count = element_count;
      doc.block = docs_bytes.substr(block_off, block_bytes);
      out.documents.push_back(doc);
    }
  }

  // SUMMARY: decode entries; semantic validation (ascending docs,
  // in-range occurrences) happens at LoadEntry/RestoreSummaryEntry.
  {
    ByteReader reader(summary_bytes);
    uint64_t entry_count = 0;
    WEBRE_RETURN_IF_ERROR(reader.ReadU64(entry_count));
    if (entry_count > summary_bytes.size() / 24) {
      return Status::InvalidArgument("snapshot SUMMARY out of bounds");
    }
    out.summary.reserve(entry_count);
    for (uint64_t i = 0; i < entry_count; ++i) {
      LoadedSnapshot::SummaryEntry entry;
      uint32_t parent = 0, name = 0;
      uint64_t n_docs = 0, n_occs = 0;
      WEBRE_RETURN_IF_ERROR(reader.ReadU32(parent));
      WEBRE_RETURN_IF_ERROR(reader.ReadU32(name));
      WEBRE_RETURN_IF_ERROR(reader.ReadU64(n_docs));
      WEBRE_RETURN_IF_ERROR(reader.ReadU64(n_occs));
      if (n_docs > reader.remaining() / 8) {
        return Status::InvalidArgument("snapshot summary docs out of bounds");
      }
      entry.parent = parent;
      entry.name = static_cast<NameId>(name);
      entry.docs.reserve(n_docs);
      for (uint64_t d = 0; d < n_docs; ++d) {
        uint64_t doc = 0;
        WEBRE_RETURN_IF_ERROR(reader.ReadU64(doc));
        entry.docs.push_back(static_cast<DocId>(doc));
      }
      if (n_occs > reader.remaining() / 16) {
        return Status::InvalidArgument("snapshot summary occs out of bounds");
      }
      entry.occurrences.reserve(n_occs);
      for (uint64_t o = 0; o < n_occs; ++o) {
        uint64_t doc = 0;
        uint32_t pos = 0, pad = 0;
        WEBRE_RETURN_IF_ERROR(reader.ReadU64(doc));
        WEBRE_RETURN_IF_ERROR(reader.ReadU32(pos));
        WEBRE_RETURN_IF_ERROR(reader.ReadU32(pad));
        entry.occurrences.emplace_back(static_cast<DocId>(doc), pos);
      }
      out.summary.push_back(std::move(entry));
    }
  }
  return Status::Ok();
}

}  // namespace storage
}  // namespace webre
