#include "storage/crash_point.h"

#include <unistd.h>

#include <cstdlib>
#include <cstring>

namespace webre {
namespace storage {

const char* const kCrashPoints[] = {
    "wal.append.before_write",
    "wal.append.torn",
    "wal.append.before_sync",
    "wal.append.after_sync",
    "checkpoint.before_tmp",
    "checkpoint.tmp.torn",
    "checkpoint.before_tmp_sync",
    "checkpoint.before_rename",
    "checkpoint.before_dir_sync",
    "checkpoint.before_wal_truncate",
    "checkpoint.mid_wal_truncate",
    "checkpoint.done",
};
const size_t kCrashPointCount = sizeof(kCrashPoints) / sizeof(kCrashPoints[0]);

bool CrashPointArmed(const char* point) {
  // Read once: the variable is set before the process under test starts
  // and never changes. (A static local keeps this lock-free after the
  // first call; C++ guarantees thread-safe initialization.)
  static const char* armed = std::getenv("WEBRE_CRASH_POINT");
  return armed != nullptr && std::strcmp(armed, point) == 0;
}

void CrashNow() {
  // _exit skips atexit handlers, stream flushing and destructors —
  // whatever was not yet written to the kernel is lost, exactly like a
  // kill -9 at this instruction.
  ::_exit(kCrashExitCode);
}

}  // namespace storage
}  // namespace webre
