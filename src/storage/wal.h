#ifndef WEBRE_STORAGE_WAL_H_
#define WEBRE_STORAGE_WAL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "repository/path_index.h"
#include "util/status.h"
#include "xml/flat_doc.h"
#include "xml/name_table.h"

namespace webre {
namespace storage {

/// Per-shard write-ahead log (DESIGN.md §14). One append-only file per
/// repository shard; `DurableRepository::Add` appends the frozen
/// document's record before acknowledging, so every acknowledged
/// document survives a crash (up to the chosen sync level), and
/// `Open` replays the logs over the latest snapshot.
///
/// File layout:
///   header  = magic "WBREWAL1" | u32 version | u32 reserved
///           | u64 seed_hash (NameTable generation guard)
///   records = repeated: u32 body_len | u32 crc32c(body) | body
///   body    = u64 doc_id | u32 element_count | u32 name_count
///           | u64 block_bytes
///           | name_count × (u32 name_id | u32 len | bytes)   dictionary
///           | block_bytes raw FlatDoc block
///
/// Records carry a per-document name dictionary (the distinct NameIds
/// the block uses, with their strings), so replay in a process whose
/// dynamic-name order differs can remap the block instead of serving
/// garbage names. A torn or corrupt record ends the valid prefix —
/// recovery truncates there instead of failing (wal_truncated_bytes).

/// Fixed WAL file header size in bytes.
inline constexpr size_t kWalHeaderSize = 24;
inline constexpr uint32_t kWalVersion = 1;

/// Serializes the WAL file header for `seed_hash`.
std::string EncodeWalHeader(uint64_t seed_hash);

/// Validates a WAL file's header. kFailedPrecondition for a wrong
/// magic/version or NameTable generation; InvalidArgument when the
/// file is shorter than a header (torn header — recovery treats the
/// whole file as truncated).
Status CheckWalHeader(std::string_view file, uint64_t seed_hash);

/// One parsed (still borrowed) WAL record. `framed` spans the record's
/// on-disk bytes including framing, so recovery can re-append a
/// surviving record verbatim when it rewrites a log.
struct WalRecord {
  uint64_t doc_id = 0;
  uint32_t element_count = 0;
  uint64_t block_bytes = 0;
  /// Distinct (writer-side NameId, name string) pairs the block uses.
  std::vector<std::pair<NameId, std::string_view>> names;
  std::string_view block;   ///< raw FlatDoc block bytes
  std::string_view framed;  ///< the whole record as stored
};

/// Encodes one record (framing included) for the given document.
std::string EncodeWalRecord(uint64_t doc_id, const FlatDoc& flat);

/// Parses records from `payload` (the file after its header) until the
/// first torn or corrupt record; returns the byte length of the valid
/// prefix. Never fails: garbage simply ends the prefix. Parsed records
/// view `payload` — keep it alive while they are used.
size_t ParseWalPayload(std::string_view payload,
                       std::vector<WalRecord>& records);

/// Rebuilds an owned FlatDoc from a parsed record, remapping NameIds
/// through the record's dictionary into the current process's
/// NameTable when the writer's ids differ. InvalidArgument when the
/// block references a NameId missing from its dictionary or fails
/// structural validation.
StatusOr<std::unique_ptr<FlatDoc>> DecodeWalDocument(const WalRecord& record);

/// Append handle on one shard's log file. Not internally synchronized;
/// DurableRepository serializes appends per shard.
class WalWriter {
 public:
  /// Opens `path` for appending, creating it (with a fresh header) if
  /// missing or empty. The caller has already validated/recovered an
  /// existing file's contents.
  static StatusOr<std::unique_ptr<WalWriter>> Open(const std::string& path,
                                                   uint64_t seed_hash);

  ~WalWriter();
  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// Appends one encoded record; with `sync`, fdatasyncs before
  /// returning. Honors the wal.append.* crash points.
  Status Append(std::string_view record, bool sync);

  /// Truncates the log back to just its header and syncs — the tail of
  /// a checkpoint's snapshot/compact cycle.
  Status Truncate();

  const std::string& path() const { return path_; }

 private:
  WalWriter(std::string path, int fd) : path_(std::move(path)), fd_(fd) {}

  std::string path_;
  int fd_ = -1;
};

}  // namespace storage
}  // namespace webre

#endif  // WEBRE_STORAGE_WAL_H_
