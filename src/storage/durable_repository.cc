#include "storage/durable_repository.h"

#include <dirent.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdint>
#include <cstring>
#include <set>
#include <thread>

#include "schema/path_extractor.h"
#include "storage/crash_point.h"
#include "storage/snapshot.h"
#include "util/file.h"
#include "xml/dtd_validator.h"

namespace webre {
namespace storage {
namespace {

std::string WalPath(const std::string& dir, size_t shard) {
  return dir + "/wal-" + std::to_string(shard) + ".log";
}

/// Parses the shard index out of "wal-<digits>.log"; SIZE_MAX when the
/// name is not of that shape.
size_t WalShardOf(std::string_view name) {
  constexpr std::string_view kPrefix = "wal-";
  constexpr std::string_view kSuffix = ".log";
  if (name.size() <= kPrefix.size() + kSuffix.size() ||
      name.substr(0, kPrefix.size()) != kPrefix ||
      name.substr(name.size() - kSuffix.size()) != kSuffix) {
    return SIZE_MAX;
  }
  const std::string_view digits =
      name.substr(kPrefix.size(), name.size() - kPrefix.size() - kSuffix.size());
  size_t shard = 0;
  for (char c : digits) {
    if (c < '0' || c > '9' || shard > (SIZE_MAX - 9) / 10) return SIZE_MAX;
    shard = shard * 10 + static_cast<size_t>(c - '0');
  }
  return shard;
}

}  // namespace

DurableRepository::DurableRepository(std::string dir, DurableOptions options)
    : dir_(std::move(dir)),
      options_(options),
      repo_(std::make_unique<XmlRepository>(options.repository)) {}

StatusOr<std::unique_ptr<DurableRepository>> DurableRepository::Open(
    const std::string& dir, DurableOptions options) {
  if (::mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST) {
    return Status::Internal("cannot create data dir " + dir + ": " +
                            std::strerror(errno));
  }
  std::unique_ptr<DurableRepository> repo(
      new DurableRepository(dir, options));
  WEBRE_RETURN_IF_ERROR(repo->Recover());
  return repo;
}

Status DurableRepository::Recover() {
  // A crash during a checkpoint can leave snapshot.tmp behind; the
  // rename never happened, so its contents are meaningless.
  ::unlink((dir_ + "/snapshot.tmp").c_str());

  // ---- Snapshot ----
  const std::string snap_path = dir_ + "/snapshot.webre";
  size_t snapshot_docs = 0;
  struct stat st;
  if (::stat(snap_path.c_str(), &st) == 0) {
    auto mapped = MappedFile::Map(snap_path);
    if (!mapped.ok()) return mapped.status();
    snapshot_ = std::move(mapped).value();
    LoadedSnapshot loaded;
    WEBRE_RETURN_IF_ERROR(LoadSnapshotImage(snapshot_.bytes(), loaded));
    snapshot_bytes_.store(snapshot_.bytes().size(), std::memory_order_relaxed);

    const NameId writer_limit = static_cast<NameId>(loaded.name_map.size());
    // Restore is shard-partitioned (shard = id mod N, per-shard index
    // and miner), so shards rebuild concurrently — this loop, not the
    // mmap, is the bulk of warmup on a large snapshot. Per-shard state
    // is byte-identical to a serial restore: each worker feeds its
    // shard the same ascending id sequence the serial loop would.
    const size_t doc_total = loaded.documents.size();
    const size_t restore_shards = repo_->num_shards();
    auto restore_one = [&](DocId id) -> Status {
      const LoadedDocument& doc = loaded.documents[id];
      std::unique_ptr<FlatDoc> flat;
      if (loaded.identity_names) {
        // Writer ids are this process's ids: serve straight out of the
        // mapping, zero copies.
        auto view = FlatDoc::FromMappedBlock(doc.block.data(),
                                             doc.block.size(),
                                             doc.element_count, writer_limit);
        if (!view.ok()) return view.status();
        flat = std::move(view).value();
      } else {
        // Dynamic-name order differed (this process interned other
        // names first): copy the block and rewrite its NameId array.
        auto block = std::make_unique<char[]>(doc.block.size());
        std::memcpy(block.get(), doc.block.data(), doc.block.size());
        if (doc.block.size() < size_t{4} * doc.element_count) {
          return Status::InvalidArgument("snapshot block too small for names");
        }
        uint32_t* ids = reinterpret_cast<uint32_t*>(block.get());
        for (uint32_t i = 0; i < doc.element_count; ++i) {
          if (ids[i] >= writer_limit) {
            return Status::InvalidArgument(
                "snapshot block names an id beyond its NAMES section");
          }
          ids[i] = loaded.name_map[ids[i]];
        }
        auto owned = FlatDoc::FromOwnedBlock(
            std::move(block), doc.block.size(), doc.element_count,
            static_cast<NameId>(NameTable::Global().size()));
        if (!owned.ok()) return owned.status();
        flat = std::move(owned).value();
      }
      // One fused walk fills the index and miner feeds (the strings a
      // full ExtractPaths would materialize are never read on restore).
      LocalDocumentPaths local;
      DocumentPaths mined;
      CollectRestorePaths(*flat, local, mined);
      return repo_->RestoreDocumentAt(id, std::move(flat), std::move(local),
                                      mined);
    };
    auto restore_shard = [&](size_t s) -> Status {
      for (size_t id = s; id < doc_total; id += restore_shards) {
        WEBRE_RETURN_IF_ERROR(restore_one(static_cast<DocId>(id)));
      }
      return Status::Ok();
    };
    const size_t workers =
        std::min<size_t>(restore_shards,
                         std::max<unsigned>(1u,
                                            std::thread::hardware_concurrency()));
    if (workers <= 1 || doc_total < 2 * restore_shards) {
      for (size_t s = 0; s < restore_shards; ++s) {
        WEBRE_RETURN_IF_ERROR(restore_shard(s));
      }
    } else {
      std::vector<Status> results(restore_shards, Status::Ok());
      std::vector<std::thread> threads;
      threads.reserve(workers);
      for (size_t t = 0; t < workers; ++t) {
        threads.emplace_back([&, t] {
          for (size_t s = t; s < restore_shards; s += workers) {
            results[s] = restore_shard(s);
          }
        });
      }
      for (std::thread& thread : threads) thread.join();
      for (const Status& status : results) {
        WEBRE_RETURN_IF_ERROR(status);
      }
    }
    repo_->SealRestore(doc_total);
    if (loaded.identity_names) mmap_hits_.Add(doc_total);
    for (LoadedSnapshot::SummaryEntry& entry : loaded.summary) {
      if (entry.name >= writer_limit) {
        return Status::InvalidArgument(
            "snapshot summary names an id beyond its NAMES section");
      }
      WEBRE_RETURN_IF_ERROR(repo_->RestoreSummaryEntry(
          entry.parent, loaded.name_map[entry.name], std::move(entry.docs),
          std::move(entry.occurrences)));
    }
    snapshot_docs = loaded.documents.size();
  }

  // ---- WAL scan ----
  const uint64_t seed_hash = SeedVocabularyHash();
  const size_t num_shards = repo_->num_shards();

  std::vector<std::pair<size_t, std::string>> wal_files;  // (shard, name)
  std::vector<std::string> stray_files;
  if (DIR* d = ::opendir(dir_.c_str())) {
    while (struct dirent* ent = ::readdir(d)) {
      const std::string_view name(ent->d_name);
      if (name.substr(0, 4) != "wal-") continue;
      const size_t shard = WalShardOf(name);
      if (shard == SIZE_MAX) {
        stray_files.emplace_back(name);
      } else {
        wal_files.emplace_back(shard, std::string(name));
      }
    }
    ::closedir(d);
  }
  std::sort(wal_files.begin(), wal_files.end());

  // `rewrite` = the on-disk log set no longer matches what replay
  // admitted (torn tails, dropped records, a changed shard count) and
  // must be rewritten so the next Open replays exactly the admitted
  // set.
  bool rewrite = !stray_files.empty();
  {
    std::set<size_t> expected;
    for (size_t s = 0; s < num_shards; ++s) expected.insert(s);
    std::set<size_t> found;
    for (const auto& [shard, name] : wal_files) found.insert(shard);
    if (!found.empty() && found != expected) rewrite = true;
  }

  std::vector<std::string> contents;  // parsed records view these
  contents.reserve(wal_files.size());
  std::vector<WalRecord> records;
  for (const auto& [shard, name] : wal_files) {
    auto file = ReadFile(dir_ + "/" + name);
    if (!file.ok()) return file.status();
    contents.push_back(std::move(file).value());
    const std::string& bytes = contents.back();
    if (bytes.size() < kWalHeaderSize) {
      // Torn during header creation: nothing recoverable in it.
      if (!bytes.empty()) rewrite = true;
      continue;
    }
    WEBRE_RETURN_IF_ERROR(CheckWalHeader(bytes, seed_hash));
    const std::string_view payload =
        std::string_view(bytes).substr(kWalHeaderSize);
    const size_t before = records.size();
    const size_t valid_end = ParseWalPayload(payload, records);
    if (valid_end < payload.size()) {
      rewrite = true;
      wal_truncated_bytes_.Add(payload.size() - valid_end);
    }
    for (size_t i = before; i < records.size(); ++i) {
      if (records[i].doc_id % num_shards != shard) rewrite = true;
    }
  }

  // ---- Replay: admit the densest id prefix ----
  std::stable_sort(records.begin(), records.end(),
                   [](const WalRecord& a, const WalRecord& b) {
                     return a.doc_id < b.doc_id;
                   });
  std::vector<const WalRecord*> admitted;
  size_t next_id = snapshot_docs;
  for (const WalRecord& record : records) {
    if (record.doc_id < next_id) {
      // Already in the snapshot (a crash between snapshot rename and
      // WAL truncation), or a duplicate id: the in-memory copy wins.
      rewrite = true;
      continue;
    }
    if (record.doc_id > next_id) {
      // A gap: the record for `next_id` was lost (torn away). Ids must
      // stay dense, so everything beyond the gap is dropped too.
      rewrite = true;
      break;
    }
    auto flat = DecodeWalDocument(record);
    if (!flat.ok()) {
      // CRC-valid but semantically broken record — treat like a torn
      // tail: keep the prefix, drop the rest.
      rewrite = true;
      break;
    }
    const DocumentPaths mined = ExtractPaths(**flat);
    auto id = repo_->AddFrozen(std::move(*flat), mined);
    if (!id.ok()) return id.status();
    admitted.push_back(&record);
    ++next_id;
    wal_replayed_.Increment();
  }
  if (admitted.size() < records.size()) rewrite = true;

  // ---- Rewrite the logs when replay dropped or re-homed anything ----
  if (rewrite) {
    for (size_t s = 0; s < num_shards; ++s) {
      std::string bytes = EncodeWalHeader(seed_hash);
      for (const WalRecord* record : admitted) {
        if (record->doc_id % num_shards == s) bytes.append(record->framed);
      }
      WEBRE_RETURN_IF_ERROR(WriteFileAtomic(WalPath(dir_, s), bytes));
    }
    for (const auto& [shard, name] : wal_files) {
      if (shard >= num_shards) ::unlink((dir_ + "/" + name).c_str());
    }
    for (const std::string& name : stray_files) {
      ::unlink((dir_ + "/" + name).c_str());
    }
    WEBRE_RETURN_IF_ERROR(SyncDir(dir_));
  }

  // ---- Append handles ----
  logs_.reserve(num_shards);
  for (size_t s = 0; s < num_shards; ++s) {
    auto writer = WalWriter::Open(WalPath(dir_, s), seed_hash);
    if (!writer.ok()) return writer.status();
    logs_.push_back(std::make_unique<ShardLog>());
    logs_.back()->writer = std::move(writer).value();
  }
  return Status::Ok();
}

StatusOr<DocId> DurableRepository::Add(std::unique_ptr<Node> document,
                                       std::shared_ptr<NodeArena> arena) {
  if (document == nullptr || !document->is_element()) {
    return Status::InvalidArgument("document root must be an element");
  }
  // Validation happens here — AddFrozen deliberately skips the DTD
  // check, so the durable path must gate admission itself.
  if (repo_->has_dtd()) {
    DtdValidationResult validation =
        ValidateAgainstDtd(*document, repo_->dtd());
    if (!validation.valid()) {
      return Status::FailedPrecondition(
          "document does not conform to the repository DTD: " +
          validation.violations[0].message);
    }
  }
  DocumentPaths mined = ExtractPaths(*document);
  std::unique_ptr<FlatDoc> flat = FlatDoc::Freeze(*document);
  document.reset();
  arena.reset();

  std::shared_lock<std::shared_mutex> checkpoint_lock(checkpoint_mutex_);
  auto id_or = repo_->AddFrozen(std::move(flat), mined);
  if (!id_or.ok()) return id_or.status();
  const DocId id = *id_or;

  // The repository owns the (immutable) FlatDoc now; encode the WAL
  // record from its stored form and log it before acknowledging.
  const FlatDoc* stored = repo_->flat_document(id);
  const std::string record = EncodeWalRecord(id, *stored);
  ShardLog& log = *logs_[id % logs_.size()];
  {
    std::lock_guard<std::mutex> lock(log.mutex);
    WEBRE_RETURN_IF_ERROR(log.writer->Append(
        record, options_.wal_sync == WalSyncMode::kFdatasync));
  }
  wal_appends_.Increment();
  return id;
}

Status DurableRepository::Checkpoint() {
  std::unique_lock<std::shared_mutex> checkpoint_lock(checkpoint_mutex_);
  const std::string image = BuildSnapshotImage(*repo_);
  WEBRE_RETURN_IF_ERROR(WriteSnapshotFile(dir_, image));
  snapshot_bytes_.store(image.size(), std::memory_order_relaxed);
  MaybeCrash("checkpoint.before_wal_truncate");
  bool first = true;
  for (auto& log : logs_) {
    if (!first) MaybeCrash("checkpoint.mid_wal_truncate");
    first = false;
    std::lock_guard<std::mutex> lock(log->mutex);
    WEBRE_RETURN_IF_ERROR(log->writer->Truncate());
  }
  MaybeCrash("checkpoint.done");
  return Status::Ok();
}

obs::StorageStatsView DurableRepository::stats() const {
  obs::StorageStatsView view;
  view.wal_appends = wal_appends_.value();
  view.wal_replayed = wal_replayed_.value();
  view.wal_truncated_bytes = wal_truncated_bytes_.value();
  view.snapshot_bytes = snapshot_bytes_.load(std::memory_order_relaxed);
  view.mmap_hits = mmap_hits_.value();
  return view;
}

}  // namespace storage
}  // namespace webre
