#ifndef WEBRE_STORAGE_CRC32C_H_
#define WEBRE_STORAGE_CRC32C_H_

#include <cstddef>
#include <cstdint>

namespace webre {
namespace storage {

/// CRC-32C (Castagnoli, polynomial 0x1EDC6F41 reflected) over `size`
/// bytes, extendable: pass a previous return value as `seed` to
/// checksum a logical stream in pieces; 0 starts a fresh checksum.
/// This is the checksum guarding every snapshot section and WAL record
/// (DESIGN.md §14); the standard check value is
/// Crc32c("123456789", 9) == 0xE3069283.
uint32_t Crc32c(const void* data, size_t size, uint32_t seed = 0);

}  // namespace storage
}  // namespace webre

#endif  // WEBRE_STORAGE_CRC32C_H_
