#ifndef WEBRE_STORAGE_SNAPSHOT_H_
#define WEBRE_STORAGE_SNAPSHOT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "repository/path_index.h"
#include "repository/repository.h"
#include "util/status.h"
#include "xml/flat_doc.h"
#include "xml/name_table.h"

namespace webre {
namespace storage {

/// Snapshot format v1 (DESIGN.md §14): one flat binary file mirroring
/// the repository's in-memory layout, so Open is an mmap plus
/// validation, not a parse.
///
///   header (40 bytes):
///     magic "WBRESNP1" | u32 version | u32 section_count
///     | u64 seed_hash | u64 doc_count
///     | u32 header_crc (over bytes [0,32) + the section table)
///     | u32 reserved
///   section table: section_count × 32 bytes
///     { u32 type | u32 pad | u64 offset | u64 size | u32 crc | u32 pad }
///     offsets are 8-aligned and ascending; crc is CRC32C of the
///     section's bytes.
///   sections:
///     NAMES (1):   u64 count | count × (u32 len | bytes) — the entire
///                  NameTable in id order, so a fresh process re-interns
///                  them and reproduces the writer's ids exactly.
///     DOCS (2):    u64 doc_count | doc_count × { u64 block_off (rel.
///                  to section start) | u64 block_bytes
///                  | u32 element_count | u32 pad } | 8-aligned raw
///                  FlatDoc blocks.
///     SUMMARY (3): u64 entry_count | per entry { u32 parent | u32 name
///                  | u64 doc_count | u64 occ_count | docs as u64 each
///                  | occs as (u64 doc | u32 pos | u32 pad) } — the
///                  structural summary in creation order (parents
///                  precede children), loaded wholesale instead of
///                  re-fed per document.
///
/// seed_hash fingerprints the seeded NameTable vocabulary (FNV-1a over
/// the seeded names); a snapshot from a different seed generation is
/// rejected with kFailedPrecondition — its NameIds mean different
/// strings. A wrong version is likewise kFailedPrecondition; structural
/// corruption (bad magic, CRC, bounds) is kInvalidArgument.

inline constexpr uint32_t kSnapshotVersion = 1;
inline constexpr size_t kSnapshotHeaderSize = 40;
inline constexpr uint32_t kSectionNames = 1;
inline constexpr uint32_t kSectionDocs = 2;
inline constexpr uint32_t kSectionSummary = 3;

/// FNV-1a fingerprint of the process's seeded NameTable vocabulary —
/// the "generation" both snapshot and WAL headers carry.
uint64_t SeedVocabularyHash();

/// Serializes the whole repository into snapshot-format bytes.
/// Documents stored as pointer trees (freeze_flat off) are frozen on
/// the fly — a snapshot always carries flat blocks. The repository must
/// be quiescent or externally locked against Add.
std::string BuildSnapshotImage(const XmlRepository& repo);

/// Writes `image` to `<dir>/snapshot.webre` crash-safely: temp file,
/// fsync, atomic rename, directory fsync. Honors the checkpoint.*
/// crash points between those steps.
Status WriteSnapshotFile(const std::string& dir, std::string_view image);

/// One document decoded (or viewed) from a snapshot.
struct LoadedDocument {
  uint32_t element_count = 0;
  /// Block bytes within the snapshot image (usable in place only when
  /// `identity_names` below is true and the image is a long-lived
  /// mapping).
  std::string_view block;
};

/// Decoded snapshot, still borrowing the image bytes.
struct LoadedSnapshot {
  /// True when re-interning the NAMES section reproduced every id —
  /// blocks are then servable as zero-copy views over the mapping.
  /// False means dynamic-name order differed; blocks must be copied
  /// with their leading NameId array rewritten through `name_map`.
  bool identity_names = true;
  /// Writer-side NameId → this process's NameId, for every stored name.
  std::vector<NameId> name_map;
  std::vector<LoadedDocument> documents;

  struct SummaryEntry {
    uint32_t parent = 0;
    NameId name = kInvalidNameId;  ///< writer-side id; map before use
    std::vector<DocId> docs;
    std::vector<std::pair<DocId, uint32_t>> occurrences;  ///< (doc, pos)
  };
  std::vector<SummaryEntry> summary;
};

/// Validates and decodes `image`. Interns the NAMES section (the only
/// mutation — the global NameTable). kFailedPrecondition for a wrong
/// version or seed generation, kInvalidArgument for any structural or
/// checksum corruption; `out` is unspecified on error. Never reads out
/// of bounds regardless of input — fuzz_snapshot pins this.
Status LoadSnapshotImage(std::string_view image, LoadedSnapshot& out);

}  // namespace storage
}  // namespace webre

#endif  // WEBRE_STORAGE_SNAPSHOT_H_
