#ifndef WEBRE_STORAGE_DURABLE_REPOSITORY_H_
#define WEBRE_STORAGE_DURABLE_REPOSITORY_H_

#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "repository/repository.h"
#include "storage/mapped_file.h"
#include "storage/wal.h"
#include "util/status.h"
#include "xml/node.h"
#include "xml/node_arena.h"

namespace webre {
namespace storage {

/// When a WAL append becomes durable relative to Add returning.
enum class WalSyncMode {
  /// No explicit sync: the OS flushes at its leisure. An OS crash can
  /// lose recent acknowledged documents; a process crash cannot.
  kNone,
  /// fdatasync before acknowledging: an acknowledged document survives
  /// even power loss (CLI: --wal-sync=fdatasync).
  kFdatasync,
};

struct DurableOptions {
  RepositoryOptions repository;
  WalSyncMode wal_sync = WalSyncMode::kNone;
};

/// A crash-safe XmlRepository: documents admitted through Add are
/// logged to a per-shard WAL before the call returns, and Checkpoint
/// folds everything into one mmap-able snapshot (DESIGN.md §14).
///
/// Directory layout:
///   <dir>/snapshot.webre   latest checkpoint (absent before the first)
///   <dir>/snapshot.tmp     in-flight checkpoint; stray copies from a
///                          crashed checkpoint are removed at Open
///   <dir>/wal-<shard>.log  appends since that checkpoint
///
/// Open maps the snapshot and serves documents as zero-copy FlatDoc
/// views over the mapping (storage.mmap_hits) — warmup is validation,
/// not parsing — then replays the WALs, truncating each at its first
/// torn or corrupt record. Replay admits the densest id prefix the
/// surviving records can extend (documents whose WAL record was lost
/// mid-crash are dropped along with every higher id, so ids stay dense
/// and query results match a fresh build over the surviving prefix).
///
/// Concurrency: Add is safe from any number of threads (and concurrent
/// with queries on repo()); Checkpoint briefly excludes Add.
class DurableRepository {
 public:
  /// Opens (creating if needed) the repository at `dir` and recovers
  /// its state. kFailedPrecondition when the on-disk data was written
  /// by an incompatible format version or seeded-name generation;
  /// kInvalidArgument when the snapshot itself is corrupt (WAL
  /// corruption is recovered from, not reported).
  static StatusOr<std::unique_ptr<DurableRepository>> Open(
      const std::string& dir, DurableOptions options = {});

  DurableRepository(const DurableRepository&) = delete;
  DurableRepository& operator=(const DurableRepository&) = delete;

  /// Validating, durable admission: DTD check (if the repository has
  /// one), freeze, index, WAL append — the document is on the log (at
  /// the configured sync level) before the id is returned.
  StatusOr<DocId> Add(std::unique_ptr<Node> document,
                      std::shared_ptr<NodeArena> arena = nullptr);

  /// Writes a fresh snapshot (temp + fsync + atomic rename) and
  /// truncates every WAL. On return the directory's state is equivalent
  /// to — and cheaper to open than — the log it replaces. Excludes
  /// concurrent Add for the duration.
  Status Checkpoint();

  /// The serving repository. Queries (and every other const read) are
  /// safe concurrently with durable Adds.
  XmlRepository& repo() { return *repo_; }
  const XmlRepository& repo() const { return *repo_; }

  const std::string& dir() const { return dir_; }

  obs::StorageStatsView stats() const;

 private:
  DurableRepository(std::string dir, DurableOptions options);

  Status Recover();

  std::string dir_;
  DurableOptions options_;
  std::unique_ptr<XmlRepository> repo_;

  /// Keeps the snapshot's pages mapped for the life of the repository
  /// (FlatDoc views point into it). A later Checkpoint's rename does
  /// not disturb it — POSIX keeps mapped pages of a replaced file
  /// valid.
  MappedFile snapshot_;

  /// Add holds it shared, Checkpoint exclusive (so a checkpoint sees a
  /// quiescent repository and can truncate the WALs it just folded in).
  std::shared_mutex checkpoint_mutex_;

  /// One writer + mutex per repository shard; Add serializes appends
  /// per shard only, so unrelated shards log in parallel.
  struct ShardLog {
    std::mutex mutex;
    std::unique_ptr<WalWriter> writer;
  };
  std::vector<std::unique_ptr<ShardLog>> logs_;

  obs::Counter wal_appends_;
  obs::Counter wal_replayed_;
  obs::Counter wal_truncated_bytes_;
  obs::Counter mmap_hits_;
  std::atomic<uint64_t> snapshot_bytes_{0};
};

}  // namespace storage
}  // namespace webre

#endif  // WEBRE_STORAGE_DURABLE_REPOSITORY_H_
