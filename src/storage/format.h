#ifndef WEBRE_STORAGE_FORMAT_H_
#define WEBRE_STORAGE_FORMAT_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

#include "util/status.h"

namespace webre {
namespace storage {

/// On-disk primitives shared by the snapshot and WAL codecs
/// (DESIGN.md §14). Everything is little-endian fixed-width; writers
/// append to a std::string, readers bounds-check every access and
/// return Status instead of reading out of range — the fuzz_snapshot
/// target feeds these readers arbitrary bytes.

// ---- Writers (append to a growing buffer) ----

inline void PutU32(std::string& out, uint32_t v) {
  char b[4] = {static_cast<char>(v), static_cast<char>(v >> 8),
               static_cast<char>(v >> 16), static_cast<char>(v >> 24)};
  out.append(b, 4);
}

inline void PutU64(std::string& out, uint64_t v) {
  char b[8];
  for (int i = 0; i < 8; ++i) b[i] = static_cast<char>(v >> (8 * i));
  out.append(b, 8);
}

/// Pads `out` with zero bytes to the next multiple of `alignment`
/// (which must be a power of two). Snapshot sections and FlatDoc
/// blocks are 8-aligned so their uint32 arrays can be read in place
/// from the mapped file.
inline void PadTo(std::string& out, size_t alignment) {
  while ((out.size() & (alignment - 1)) != 0) out.push_back('\0');
}

// ---- Readers (raw, caller has already bounds-checked) ----

inline uint32_t GetU32(const char* p) {
  const unsigned char* b = reinterpret_cast<const unsigned char*>(p);
  return static_cast<uint32_t>(b[0]) | (static_cast<uint32_t>(b[1]) << 8) |
         (static_cast<uint32_t>(b[2]) << 16) |
         (static_cast<uint32_t>(b[3]) << 24);
}

inline uint64_t GetU64(const char* p) {
  const unsigned char* b = reinterpret_cast<const unsigned char*>(p);
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | b[i];
  return v;
}

/// A forward cursor over untrusted bytes. Every Read* checks the
/// remaining length first; a failed read poisons nothing (the caller
/// just propagates the Status), and offsets/lengths decoded from the
/// data itself must still be validated by the caller before use as
/// array bounds.
class ByteReader {
 public:
  ByteReader(const char* data, size_t size) : data_(data), size_(size) {}
  explicit ByteReader(std::string_view bytes)
      : ByteReader(bytes.data(), bytes.size()) {}

  size_t offset() const { return off_; }
  size_t remaining() const { return size_ - off_; }
  const char* cursor() const { return data_ + off_; }

  Status ReadU32(uint32_t& out) {
    if (remaining() < 4) return Truncated("u32");
    out = GetU32(data_ + off_);
    off_ += 4;
    return Status::Ok();
  }

  Status ReadU64(uint64_t& out) {
    if (remaining() < 8) return Truncated("u64");
    out = GetU64(data_ + off_);
    off_ += 8;
    return Status::Ok();
  }

  /// Views `n` raw bytes at the cursor (no copy) and advances.
  Status ReadBytes(size_t n, std::string_view& out) {
    if (remaining() < n) return Truncated("bytes");
    out = std::string_view(data_ + off_, n);
    off_ += n;
    return Status::Ok();
  }

  Status Skip(size_t n) {
    if (remaining() < n) return Truncated("skip");
    off_ += n;
    return Status::Ok();
  }

 private:
  static Status Truncated(const char* what) {
    return Status::InvalidArgument(std::string("truncated ") + what +
                                   " in storage input");
  }

  const char* data_;
  size_t size_;
  size_t off_ = 0;
};

}  // namespace storage
}  // namespace webre

#endif  // WEBRE_STORAGE_FORMAT_H_
