#ifndef WEBRE_STORAGE_MAPPED_FILE_H_
#define WEBRE_STORAGE_MAPPED_FILE_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>

#include "util/status.h"

namespace webre {
namespace storage {

/// A read-only memory mapping of one file, alive for the object's
/// lifetime. The durable repository maps the snapshot once at Open and
/// serves FlatDoc views straight out of the mapping — load is a map,
/// not a parse. POSIX keeps the mapped pages valid even after the file
/// is later renamed over or unlinked (a checkpoint replacing the
/// snapshot does not disturb readers of the old one).
class MappedFile {
 public:
  /// Maps `path` read-only. An empty file maps to an empty view.
  static StatusOr<MappedFile> Map(const std::string& path);

  MappedFile() = default;
  MappedFile(MappedFile&& other) noexcept { *this = std::move(other); }
  MappedFile& operator=(MappedFile&& other) noexcept {
    if (this != &other) {
      Unmap();
      data_ = other.data_;
      size_ = other.size_;
      other.data_ = nullptr;
      other.size_ = 0;
    }
    return *this;
  }
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;
  ~MappedFile() { Unmap(); }

  std::string_view bytes() const {
    return data_ == nullptr
               ? std::string_view()
               : std::string_view(static_cast<const char*>(data_), size_);
  }
  bool mapped() const { return data_ != nullptr; }

 private:
  void Unmap();

  void* data_ = nullptr;
  size_t size_ = 0;
};

}  // namespace storage
}  // namespace webre

#endif  // WEBRE_STORAGE_MAPPED_FILE_H_
