#include "storage/mapped_file.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace webre {
namespace storage {

StatusOr<MappedFile> MappedFile::Map(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::NotFound("cannot open " + path + ": " +
                            std::strerror(errno));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return Status::Internal("fstat failed on " + path);
  }
  MappedFile mapped;
  if (st.st_size > 0) {
    void* data = ::mmap(nullptr, static_cast<size_t>(st.st_size), PROT_READ,
                        MAP_PRIVATE, fd, 0);
    if (data == MAP_FAILED) {
      ::close(fd);
      return Status::Internal("mmap failed on " + path + ": " +
                              std::strerror(errno));
    }
    mapped.data_ = data;
    mapped.size_ = static_cast<size_t>(st.st_size);
  }
  ::close(fd);
  return mapped;
}

void MappedFile::Unmap() {
  if (data_ != nullptr) {
    ::munmap(data_, size_);
    data_ = nullptr;
    size_ = 0;
  }
}

}  // namespace storage
}  // namespace webre
