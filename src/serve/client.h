#ifndef WEBRE_SERVE_CLIENT_H_
#define WEBRE_SERVE_CLIENT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "serve/frame.h"
#include "util/status.h"

namespace webre {
namespace serve {

/// A blocking client for the wire protocol — the counterpart the tests,
/// the load generator and the serving bench all use, so client framing
/// has exactly one implementation (serve/frame) and one transport.
///
/// The socket is full-duplex: one thread may Send while another
/// Receives (the load generator's open-loop split). Neither method is
/// safe for two concurrent callers of the SAME direction.
class Client {
 public:
  /// Connects to 127.0.0.1:port. `max_frame_bytes` caps response
  /// payloads this client will accept.
  static StatusOr<std::unique_ptr<Client>> Connect(
      uint16_t port, size_t max_frame_bytes = 64u << 20);

  ~Client();
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Writes one request frame.
  Status Send(const Request& request);

  /// Blocks until the next response frame arrives. kInternal when the
  /// server closed the connection; kInvalidArgument on a malformed
  /// frame.
  StatusOr<Response> Receive();

  /// Send + Receive for the single-outstanding-request pattern.
  StatusOr<Response> Call(const Request& request);

  /// Writes raw bytes — how tests drive the JSON-lines debug mode and
  /// deliberately malformed frames.
  Status SendRaw(std::string_view bytes);

  /// Blocks until one '\n'-terminated line arrives (returned without
  /// the newline). For JSON debug-mode responses.
  StatusOr<std::string> ReceiveLine();

 private:
  Client(int fd, size_t max_frame_bytes);

  int fd_;
  FrameDecoder decoder_;
  /// Carry-over bytes for ReceiveLine (a read may span lines).
  std::string line_buffer_;
};

}  // namespace serve
}  // namespace webre

#endif  // WEBRE_SERVE_CLIENT_H_
