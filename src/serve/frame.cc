#include "serve/frame.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <utility>

namespace webre {
namespace serve {

namespace {

// ---- Little-endian scalar + length-prefixed-string primitives ----

void PutU16(uint16_t v, std::string& out) {
  out.push_back(static_cast<char>(v & 0xFF));
  out.push_back(static_cast<char>((v >> 8) & 0xFF));
}

void PutU32(uint32_t v, std::string& out) {
  for (int shift = 0; shift < 32; shift += 8) {
    out.push_back(static_cast<char>((v >> shift) & 0xFF));
  }
}

void PutU64(uint64_t v, std::string& out) {
  for (int shift = 0; shift < 64; shift += 8) {
    out.push_back(static_cast<char>((v >> shift) & 0xFF));
  }
}

void PutString(std::string_view s, std::string& out) {
  PutU32(static_cast<uint32_t>(s.size()), out);
  out.append(s);
}

// Bounds-checked readers over a payload view. Each advances `pos` and
// returns false when the payload is too short — the decoder's only
// failure mode, so a mutated frame can never read out of bounds.
bool GetU32(std::string_view in, size_t& pos, uint32_t& v) {
  if (in.size() - pos < 4) return false;
  v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<unsigned char>(in[pos + i]))
         << (8 * i);
  }
  pos += 4;
  return true;
}

bool GetU64(std::string_view in, size_t& pos, uint64_t& v) {
  if (in.size() - pos < 8) return false;
  v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<unsigned char>(in[pos + i]))
         << (8 * i);
  }
  pos += 8;
  return true;
}

bool GetString(std::string_view in, size_t& pos, std::string& s) {
  uint32_t len = 0;
  if (!GetU32(in, pos, len)) return false;
  if (in.size() - pos < len) return false;
  s.assign(in.substr(pos, len));
  pos += len;
  return true;
}

bool KnownRequestType(uint8_t type) {
  switch (static_cast<MsgType>(type)) {
    case MsgType::kPing:
    case MsgType::kIngest:
    case MsgType::kQuery:
    case MsgType::kSchema:
    case MsgType::kStats:
    case MsgType::kCheckpoint:
      return true;
    case MsgType::kError:
      return false;  // response-only
  }
  return false;
}

bool KnownResponseType(uint8_t type) {
  return KnownRequestType(type) ||
         static_cast<MsgType>(type) == MsgType::kError;
}

void EncodeHeader(MsgType type, uint16_t flags, uint32_t id,
                  size_t payload_len, std::string& out) {
  PutU32(static_cast<uint32_t>(payload_len), out);
  out.push_back(static_cast<char>(kWireVersion));
  out.push_back(static_cast<char>(type));
  PutU16(flags, out);
  PutU32(id, out);
}

// Minimal JSON string escaping for the debug-mode response lines.
void AppendJsonEscaped(std::string_view s, std::string& out) {
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
}

}  // namespace

const char* WireErrorName(WireError error) {
  switch (error) {
    case WireError::kNone:
      return "ok";
    case WireError::kBadFrame:
      return "bad_frame";
    case WireError::kInvalidArgument:
      return "invalid_argument";
    case WireError::kNotFound:
      return "not_found";
    case WireError::kFailedPrecondition:
      return "failed_precondition";
    case WireError::kResourceExhausted:
      return "resource_exhausted";
    case WireError::kOverloaded:
      return "overloaded";
    case WireError::kInternal:
      return "internal";
  }
  return "unknown";
}

void EncodeRequest(const Request& request, std::string& out) {
  EncodeHeader(request.type, /*flags=*/0, request.id, request.body.size(),
               out);
  out.append(request.body);
}

void EncodeResponseBody(const Response& response, std::string& out) {
  if (response.error != WireError::kNone) {
    out.push_back(static_cast<char>(response.error));
    PutU32(response.retry_after_ms, out);
    PutString(response.message, out);
    return;
  }
  switch (response.type) {
    case MsgType::kPing:
    case MsgType::kCheckpoint:
      break;  // empty payload
    case MsgType::kIngest:
      PutU64(response.doc_id, out);
      break;
    case MsgType::kQuery:
      PutU64(response.total_matches, out);
      PutU32(static_cast<uint32_t>(response.matches.size()), out);
      for (const WireMatch& match : response.matches) {
        PutU64(match.doc, out);
        PutU32(match.pos, out);
        PutString(match.name, out);
        PutString(match.val, out);
      }
      break;
    case MsgType::kSchema:
      PutString(response.schema_text, out);
      PutString(response.dtd_text, out);
      break;
    case MsgType::kStats:
      PutString(response.stats_json, out);
      break;
    case MsgType::kError:
      break;  // handled above via response.error
  }
}

void EncodeResponseHeader(MsgType type, uint32_t id, size_t body_len,
                          std::string& out) {
  EncodeHeader(type, kFlagResponse, id, body_len, out);
}

void EncodeResponse(const Response& response, std::string& out) {
  std::string body;
  EncodeResponseBody(response, body);
  const MsgType type =
      response.error != WireError::kNone ? MsgType::kError : response.type;
  EncodeResponseHeader(type, response.id, body.size(), out);
  out.append(body);
}

bool DecodeResponseBody(std::string_view payload, Response& out) {
  size_t pos = 0;
  if (out.type == MsgType::kError) {
    if (payload.size() < 1) return false;
    const uint8_t code = static_cast<unsigned char>(payload[0]);
    if (code == 0 || code > static_cast<uint8_t>(WireError::kInternal)) {
      return false;
    }
    out.error = static_cast<WireError>(code);
    pos = 1;
    return GetU32(payload, pos, out.retry_after_ms) &&
           GetString(payload, pos, out.message) && pos == payload.size();
  }
  out.error = WireError::kNone;
  switch (out.type) {
    case MsgType::kPing:
    case MsgType::kCheckpoint:
      return payload.empty();
    case MsgType::kIngest:
      return GetU64(payload, pos, out.doc_id) && pos == payload.size();
    case MsgType::kQuery: {
      uint32_t returned = 0;
      if (!GetU64(payload, pos, out.total_matches) ||
          !GetU32(payload, pos, returned)) {
        return false;
      }
      // Each entry is at least 20 bytes; a count announcing more than
      // the payload can hold is rejected before reserving anything.
      if (returned > (payload.size() - pos) / 20) return false;
      out.matches.clear();
      out.matches.reserve(returned);
      for (uint32_t i = 0; i < returned; ++i) {
        WireMatch match;
        if (!GetU64(payload, pos, match.doc) ||
            !GetU32(payload, pos, match.pos) ||
            !GetString(payload, pos, match.name) ||
            !GetString(payload, pos, match.val)) {
          return false;
        }
        out.matches.push_back(std::move(match));
      }
      return pos == payload.size();
    }
    case MsgType::kSchema:
      return GetString(payload, pos, out.schema_text) &&
             GetString(payload, pos, out.dtd_text) && pos == payload.size();
    case MsgType::kStats:
      return GetString(payload, pos, out.stats_json) && pos == payload.size();
    case MsgType::kError:
      return false;  // unreachable: handled above
  }
  return false;
}

FrameStatus FrameDecoder::NextPayload(bool want_response, MsgType& type,
                                      uint32_t& id,
                                      std::string_view& payload) {
  // Compact once the consumed prefix dominates, so a long-lived
  // connection's buffer does not grow without bound.
  if (consumed_ > 0 && consumed_ >= buffer_.size() / 2) {
    buffer_.erase(0, consumed_);
    consumed_ = 0;
  }
  const std::string_view view =
      std::string_view(buffer_).substr(consumed_);
  if (view.size() < kFrameHeaderBytes) return FrameStatus::kNeedMore;

  size_t pos = 0;
  uint32_t payload_len = 0;
  GetU32(view, pos, payload_len);
  const uint8_t version = static_cast<unsigned char>(view[4]);
  const uint8_t raw_type = static_cast<unsigned char>(view[5]);
  const uint16_t flags =
      static_cast<uint16_t>(static_cast<unsigned char>(view[6])) |
      static_cast<uint16_t>(static_cast<unsigned char>(view[7])) << 8;
  pos = 8;
  GetU32(view, pos, id);

  if (version != kWireVersion) {
    error_ = "unsupported wire version " + std::to_string(version);
    return FrameStatus::kBad;
  }
  if (payload_len > max_frame_bytes_) {
    error_ = "frame announces " + std::to_string(payload_len) +
             " payload bytes, cap is " + std::to_string(max_frame_bytes_);
    return FrameStatus::kBad;
  }
  const bool is_response = (flags & kFlagResponse) != 0;
  if (is_response != want_response) {
    error_ = want_response ? "request frame on a response stream"
                           : "response frame on a request stream";
    return FrameStatus::kBad;
  }
  if (want_response ? !KnownResponseType(raw_type)
                    : !KnownRequestType(raw_type)) {
    error_ = "unknown message type " + std::to_string(raw_type);
    return FrameStatus::kBad;
  }
  if (view.size() - kFrameHeaderBytes < payload_len) {
    return FrameStatus::kNeedMore;
  }
  type = static_cast<MsgType>(raw_type);
  payload = view.substr(kFrameHeaderBytes, payload_len);
  consumed_ += kFrameHeaderBytes + payload_len;
  return FrameStatus::kFrame;
}

FrameStatus FrameDecoder::NextRequest(Request& out) {
  MsgType type;
  uint32_t id = 0;
  std::string_view payload;
  const FrameStatus status =
      NextPayload(/*want_response=*/false, type, id, payload);
  if (status != FrameStatus::kFrame) return status;
  // Only ingest and query carry a payload; the rest must be empty.
  if (type != MsgType::kIngest && type != MsgType::kQuery &&
      !payload.empty()) {
    error_ = "unexpected payload on message type " +
             std::to_string(static_cast<int>(type));
    return FrameStatus::kBad;
  }
  out.type = type;
  out.id = id;
  out.body.assign(payload);
  return FrameStatus::kFrame;
}

FrameStatus FrameDecoder::NextResponse(Response& out) {
  MsgType type;
  uint32_t id = 0;
  std::string_view payload;
  const FrameStatus status =
      NextPayload(/*want_response=*/true, type, id, payload);
  if (status != FrameStatus::kFrame) return status;
  out = Response();
  out.type = type;
  out.id = id;
  if (!DecodeResponseBody(payload, out)) {
    error_ = "malformed response payload for type " +
             std::to_string(static_cast<int>(type));
    return FrameStatus::kBad;
  }
  return FrameStatus::kFrame;
}

namespace {

// A tiny scanner for the flat debug-mode objects: string and integer
// values only, no nesting. Returns false on anything outside that
// subset — the binary protocol is the real surface; this face exists
// for humans with netcat.
bool ParseFlatJson(std::string_view line,
                   std::vector<std::pair<std::string, std::string>>& out) {
  size_t pos = 0;
  auto skip_space = [&] {
    while (pos < line.size() &&
           (line[pos] == ' ' || line[pos] == '\t' || line[pos] == '\r')) {
      ++pos;
    }
  };
  auto parse_string = [&](std::string& s) {
    if (pos >= line.size() || line[pos] != '"') return false;
    ++pos;
    s.clear();
    while (pos < line.size() && line[pos] != '"') {
      char c = line[pos];
      if (c == '\\') {
        if (pos + 1 >= line.size()) return false;
        const char esc = line[pos + 1];
        switch (esc) {
          case '"':
            c = '"';
            break;
          case '\\':
            c = '\\';
            break;
          case '/':
            c = '/';
            break;
          case 'n':
            c = '\n';
            break;
          case 'r':
            c = '\r';
            break;
          case 't':
            c = '\t';
            break;
          default:
            return false;  // \uXXXX etc. not part of the debug subset
        }
        ++pos;
      }
      s.push_back(c);
      ++pos;
    }
    if (pos >= line.size()) return false;
    ++pos;  // closing quote
    return true;
  };

  skip_space();
  if (pos >= line.size() || line[pos] != '{') return false;
  ++pos;
  skip_space();
  if (pos < line.size() && line[pos] == '}') {
    ++pos;
  } else {
    while (true) {
      skip_space();
      std::string key;
      if (!parse_string(key)) return false;
      skip_space();
      if (pos >= line.size() || line[pos] != ':') return false;
      ++pos;
      skip_space();
      std::string value;
      if (pos < line.size() && line[pos] == '"') {
        if (!parse_string(value)) return false;
      } else {
        const size_t start = pos;
        while (pos < line.size() &&
               (std::isdigit(static_cast<unsigned char>(line[pos])) ||
                line[pos] == '-')) {
          ++pos;
        }
        if (pos == start) return false;
        value.assign(line.substr(start, pos - start));
      }
      out.emplace_back(std::move(key), std::move(value));
      skip_space();
      if (pos < line.size() && line[pos] == ',') {
        ++pos;
        continue;
      }
      if (pos < line.size() && line[pos] == '}') {
        ++pos;
        break;
      }
      return false;
    }
  }
  skip_space();
  return pos == line.size();
}

}  // namespace

Status ParseJsonRequest(std::string_view line, Request& out) {
  std::vector<std::pair<std::string, std::string>> fields;
  if (!ParseFlatJson(line, fields)) {
    return Status::InvalidArgument(
        "debug request is not a flat JSON object");
  }
  std::string op;
  out = Request();
  for (const auto& [key, value] : fields) {
    if (key == "op") {
      op = value;
    } else if (key == "q" || key == "html") {
      out.body = value;
    } else if (key == "id") {
      out.id = static_cast<uint32_t>(std::strtoul(value.c_str(), nullptr, 10));
    } else {
      return Status::InvalidArgument("unknown debug request field '" + key +
                                     "'");
    }
  }
  if (op == "ping") {
    out.type = MsgType::kPing;
  } else if (op == "ingest") {
    out.type = MsgType::kIngest;
  } else if (op == "query") {
    out.type = MsgType::kQuery;
  } else if (op == "schema") {
    out.type = MsgType::kSchema;
  } else if (op == "stats") {
    out.type = MsgType::kStats;
  } else if (op == "checkpoint") {
    out.type = MsgType::kCheckpoint;
  } else {
    return Status::InvalidArgument("unknown debug op '" + op + "'");
  }
  if (out.type != MsgType::kIngest && out.type != MsgType::kQuery &&
      !out.body.empty()) {
    return Status::InvalidArgument("op '" + op + "' takes no body field");
  }
  return Status::Ok();
}

std::string ResponseToJsonLine(const Response& response) {
  std::string out = "{\"id\":" + std::to_string(response.id);
  if (response.error != WireError::kNone) {
    out += ",\"error\":\"";
    out += WireErrorName(response.error);
    out += "\"";
    if (response.error == WireError::kOverloaded) {
      out += ",\"retry_after_ms\":" + std::to_string(response.retry_after_ms);
    }
    out += ",\"message\":\"";
    AppendJsonEscaped(response.message, out);
    out += "\"}";
    return out;
  }
  out += ",\"ok\":true";
  switch (response.type) {
    case MsgType::kPing:
    case MsgType::kCheckpoint:
      break;
    case MsgType::kIngest:
      out += ",\"doc\":" + std::to_string(response.doc_id);
      break;
    case MsgType::kQuery:
      out += ",\"total\":" + std::to_string(response.total_matches);
      out += ",\"matches\":[";
      for (size_t i = 0; i < response.matches.size(); ++i) {
        const WireMatch& match = response.matches[i];
        if (i > 0) out += ",";
        out += "{\"doc\":" + std::to_string(match.doc) +
               ",\"pos\":" + std::to_string(match.pos) + ",\"name\":\"";
        AppendJsonEscaped(match.name, out);
        out += "\",\"val\":\"";
        AppendJsonEscaped(match.val, out);
        out += "\"}";
      }
      out += "]";
      break;
    case MsgType::kSchema:
      out += ",\"schema\":\"";
      AppendJsonEscaped(response.schema_text, out);
      out += "\",\"dtd\":\"";
      AppendJsonEscaped(response.dtd_text, out);
      out += "\"";
      break;
    case MsgType::kStats:
      out += ",\"stats\":";
      out += response.stats_json.empty() ? "{}" : response.stats_json;
      break;
    case MsgType::kError:
      break;  // unreachable
  }
  out += "}";
  return out;
}

WireError StatusToWireError(const Status& status) {
  switch (status.code()) {
    case StatusCode::kOk:
      return WireError::kNone;
    case StatusCode::kInvalidArgument:
      return WireError::kInvalidArgument;
    case StatusCode::kNotFound:
      return WireError::kNotFound;
    case StatusCode::kFailedPrecondition:
      return WireError::kFailedPrecondition;
    case StatusCode::kOutOfRange:
      return WireError::kInvalidArgument;
    case StatusCode::kResourceExhausted:
      return WireError::kResourceExhausted;
    case StatusCode::kInternal:
      return WireError::kInternal;
  }
  return WireError::kInternal;
}

}  // namespace serve
}  // namespace webre
