#ifndef WEBRE_SERVE_ADMISSION_H_
#define WEBRE_SERVE_ADMISSION_H_

#include <atomic>
#include <cstddef>
#include <cstdint>

#include "obs/metrics.h"
#include "util/resource_limits.h"

namespace webre {
namespace serve {

/// Admission verdict for one request. Admitted requests proceed to a
/// worker; shed requests are answered immediately with a typed
/// kOverloaded error carrying `retry_after_ms` — the client backs off
/// instead of the server stalling (or buffering) under overload.
struct Admission {
  bool admitted = true;
  uint32_t retry_after_ms = 0;
  /// Which guard shed it ("quota", "in_flight") — for the error message.
  const char* reason = "";
};

/// Per-client token-bucket quota (one per connection). The bucket holds
/// up to `burst` tokens and refills at `per_second`; each request costs
/// one token. An empty bucket sheds with retry_after_ms = time until a
/// token accrues. Single-threaded by design: the event loop is the only
/// caller, so no atomics are needed.
class TokenBucket {
 public:
  /// `per_second` <= 0 disables the quota (always admits).
  TokenBucket(double per_second, double burst)
      : rate_(per_second), tokens_(burst < 1.0 ? 1.0 : burst),
        capacity_(tokens_) {}

  /// Charges one token at time `now_seconds` (monotonic).
  Admission Admit(double now_seconds) {
    if (rate_ <= 0.0) return Admission{};
    if (last_refill_s_ == 0.0) last_refill_s_ = now_seconds;
    tokens_ += (now_seconds - last_refill_s_) * rate_;
    if (tokens_ > capacity_) tokens_ = capacity_;
    last_refill_s_ = now_seconds;
    if (tokens_ >= 1.0) {
      tokens_ -= 1.0;
      return Admission{};
    }
    Admission shed;
    shed.admitted = false;
    const double deficit_s = (1.0 - tokens_) / rate_;
    shed.retry_after_ms = static_cast<uint32_t>(deficit_s * 1e3) + 1;
    shed.reason = "quota";
    return shed;
  }

 private:
  double rate_;
  double tokens_;
  double capacity_;
  double last_refill_s_ = 0.0;
};

/// The server-wide in-flight gate: counts requests dispatched to the
/// worker pool but not yet answered. Beyond `max_in_flight` the server
/// sheds instead of queueing without bound — queue depth is the
/// overload signal, and a bounded queue keeps tail latency bounded.
/// Thread-safe (the loop admits, workers release).
class InFlightGate {
 public:
  explicit InFlightGate(size_t max_in_flight)
      : max_in_flight_(max_in_flight) {}

  /// Tries to take a slot. On shed, retry_after_ms is proportional to
  /// the configured depth — a full queue of slow requests earns a
  /// longer back-off than a blip.
  Admission TryAcquire() {
    size_t current = in_flight_.load(std::memory_order_relaxed);
    while (current < max_in_flight_) {
      if (in_flight_.compare_exchange_weak(current, current + 1,
                                           std::memory_order_acq_rel)) {
        // Track the high-water mark for the serve.max_queue_depth
        // counter (exposed via ServerStats).
        depth_high_water_.Record(current + 1);
        return Admission{};
      }
    }
    Admission shed;
    shed.admitted = false;
    shed.retry_after_ms =
        static_cast<uint32_t>(5 + 5 * (max_in_flight_ > 64 ? 64
                                                           : max_in_flight_));
    shed.reason = "in_flight";
    return shed;
  }

  void Release() { in_flight_.fetch_sub(1, std::memory_order_acq_rel); }

  size_t current() const {
    return in_flight_.load(std::memory_order_relaxed);
  }
  uint64_t high_water() const { return depth_high_water_.value(); }

 private:
  const size_t max_in_flight_;
  std::atomic<size_t> in_flight_{0};
  obs::MaxGauge depth_high_water_;
};

}  // namespace serve
}  // namespace webre

#endif  // WEBRE_SERVE_ADMISSION_H_
