#ifndef WEBRE_SERVE_FRAME_H_
#define WEBRE_SERVE_FRAME_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace webre {
namespace serve {

/// The wire protocol of the serving front end (full reference:
/// docs/SERVING.md). One library encodes AND decodes both directions —
/// the server, the blocking client, the load generator and the frame
/// fuzzer all link this file, so there is exactly one implementation of
/// the framing rules.
///
/// Binary mode: length-prefixed frames.
///
///   offset  size  field
///   0       4     payload_len   (LE; bytes following the header)
///   4       1     version       (kWireVersion)
///   5       1     type          (MsgType)
///   6       2     flags         (LE; bit 0 = response, rest reserved 0)
///   8       4     request_id    (LE; echoed verbatim in the response)
///   12      ...   payload       (type-specific, see docs/SERVING.md)
///
/// Payload scalars are little-endian; strings are a u32 length followed
/// by raw bytes. A frame never exceeds the configured size cap — the
/// decoder rejects oversized announcements BEFORE buffering the payload,
/// which is the admission-control byte budget at the framing layer.
///
/// JSON-lines debug mode: a connection whose very first byte is '{'
/// speaks newline-delimited JSON objects instead (one request per line,
/// one response line per request). ParseJsonRequest handles that face.

inline constexpr uint8_t kWireVersion = 1;
inline constexpr size_t kFrameHeaderBytes = 12;
inline constexpr uint16_t kFlagResponse = 1;

/// Message opcodes. Requests and their responses share the opcode (the
/// response flag tells them apart); kError is response-only.
enum class MsgType : uint8_t {
  kPing = 1,        ///< health check; empty payload both ways
  kIngest = 2,      ///< request: raw HTML; response: u64 doc id
  kQuery = 3,       ///< request: query text; response: match list
  kSchema = 4,      ///< request: empty; response: schema + DTD strings
  kStats = 5,       ///< request: empty; response: JSON stats blob
  kCheckpoint = 6,  ///< request: empty; response: empty (durable only)
  kError = 0x7F,    ///< response-only: typed error, see WireError
};

/// Typed error taxonomy carried by kError responses. Stable wire values
/// — documented in docs/SERVING.md; extend by appending only.
enum class WireError : uint8_t {
  kNone = 0,
  /// The frame itself was malformed (bad version, unknown type,
  /// truncated payload, oversized announcement). The connection is
  /// closed after this error — framing state is unrecoverable.
  kBadFrame = 1,
  kInvalidArgument = 2,     ///< well-framed but semantically bad request
  kNotFound = 3,            ///< e.g. unknown document
  kFailedPrecondition = 4,  ///< e.g. checkpoint without a durable dir
  kResourceExhausted = 5,   ///< a ResourceLimits guard tripped serving it
  /// Admission control shed the request (per-client quota, global
  /// in-flight cap, or connection cap). retry_after_ms says when to
  /// try again; the connection stays usable.
  kOverloaded = 6,
  kInternal = 7,  ///< unexpected server-side failure (message says what)
};

/// Stable lower_snake name for a WireError ("overloaded", ...).
const char* WireErrorName(WireError error);

/// A decoded request frame.
struct Request {
  MsgType type = MsgType::kPing;
  uint32_t id = 0;
  /// kIngest: raw HTML. kQuery: query text. Empty for the rest.
  std::string body;
};

/// One query match on the wire: the element's document, its pre-order
/// position among the document's elements, its name and its val.
struct WireMatch {
  uint64_t doc = 0;
  uint32_t pos = 0;
  std::string name;
  std::string val;
};

/// A decoded response frame. Exactly one face is meaningful, selected
/// by `type`; `error != kNone` forces type kError.
struct Response {
  MsgType type = MsgType::kPing;
  uint32_t id = 0;

  // kError face.
  WireError error = WireError::kNone;
  uint32_t retry_after_ms = 0;  ///< meaningful for kOverloaded only
  std::string message;

  uint64_t doc_id = 0;  ///< kIngest: id the repository assigned

  // kQuery face: total matches in the repository and the returned
  // prefix (capped by the server's max_results).
  uint64_t total_matches = 0;
  std::vector<WireMatch> matches;

  // kSchema face.
  std::string schema_text;
  std::string dtd_text;

  // kStats face: one JSON object (schema in docs/SERVING.md).
  std::string stats_json;

  bool ok() const { return error == WireError::kNone; }
};

/// Appends the encoded frame for `request` to `out`.
void EncodeRequest(const Request& request, std::string& out);

/// Appends the encoded frame for `response` to `out`. The response
/// BODY (payload bytes after the header) depends only on the response
/// content, never on the request id — the server's result cache relies
/// on this to reuse one encoded body across requests.
void EncodeResponse(const Response& response, std::string& out);

/// Encodes only the payload of `response` (no header). Combine with
/// EncodeResponseHeader to stamp a cached body with a fresh id.
void EncodeResponseBody(const Response& response, std::string& out);

/// Appends the 12-byte response header for a body of `body_len` bytes.
void EncodeResponseHeader(MsgType type, uint32_t id, size_t body_len,
                          std::string& out);

/// Decoder verdict for one Consume step.
enum class FrameStatus {
  kNeedMore,  ///< the buffer holds no complete frame yet
  kFrame,     ///< one frame was decoded and consumed from the buffer
  kBad,       ///< unrecoverable framing error; close the connection
};

/// Incremental frame decoder over a connection's receive buffer. Feed
/// bytes with Append, then call NextRequest/NextResponse until
/// kNeedMore. The decoder enforces `max_frame_bytes` on the ANNOUNCED
/// payload length, so an adversarial 4 GiB announcement is rejected
/// after 12 bytes, not buffered.
class FrameDecoder {
 public:
  explicit FrameDecoder(size_t max_frame_bytes)
      : max_frame_bytes_(max_frame_bytes) {}

  void Append(std::string_view bytes) { buffer_.append(bytes); }

  /// Bytes buffered but not yet consumed (for backpressure accounting).
  size_t buffered_bytes() const { return buffer_.size() - consumed_; }

  /// Decodes the next request frame (server side). On kBad, `error()`
  /// describes the problem.
  FrameStatus NextRequest(Request& out);

  /// Decodes the next response frame (client side).
  FrameStatus NextResponse(Response& out);

  const std::string& error() const { return error_; }

 private:
  /// Shared header scan: returns the verdict, filling type/id/payload
  /// view on kFrame. `want_response` selects the direction check.
  FrameStatus NextPayload(bool want_response, MsgType& type, uint32_t& id,
                          std::string_view& payload);

  size_t max_frame_bytes_;
  std::string buffer_;
  size_t consumed_ = 0;
  std::string error_;
};

/// Decodes one response payload (the bytes after the header) into
/// `out`, whose `type` and `id` must already be set from the header.
/// Returns false on malformed payload. Exposed for the fuzzer.
bool DecodeResponseBody(std::string_view payload, Response& out);

/// Parses one JSON-lines debug-mode request (without the trailing
/// newline): an object like {"op":"query","q":"//DATE","id":7}. Only
/// the flat string/number fields the protocol defines are understood;
/// anything else fails. Shared by the server and the frame fuzzer.
Status ParseJsonRequest(std::string_view line, Request& out);

/// Renders `response` as one JSON line (no trailing newline) for
/// debug-mode connections. Inverse direction of ParseJsonRequest.
std::string ResponseToJsonLine(const Response& response);

/// Maps a library Status onto the wire taxonomy (kOk asserts).
WireError StatusToWireError(const Status& status);

}  // namespace serve
}  // namespace webre

#endif  // WEBRE_SERVE_FRAME_H_
