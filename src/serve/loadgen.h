#ifndef WEBRE_SERVE_LOADGEN_H_
#define WEBRE_SERVE_LOADGEN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace webre {
namespace serve {

/// Configuration of one open-loop run against a serving front end.
struct LoadgenOptions {
  uint16_t port = 0;
  /// Target arrival rate, requests/second across all connections. The
  /// arrival process is Poisson (exponential inter-arrivals) and OPEN
  /// LOOP: the schedule never waits for responses, so a slow server
  /// accumulates queue — which is exactly the overload the admission
  /// control is there to shed.
  double target_qps = 200.0;
  double duration_s = 1.0;
  /// Client connections; the target rate is split evenly across them.
  /// The loadgen tool auto-scales this to 2*loops when not given on the
  /// command line, so scaling arms saturate the server, not the
  /// generator.
  size_t connections = 2;
  /// Fraction of requests that are ingests (the rest are queries).
  double write_fraction = 0.0;
  /// Deterministic workload seed (splitmix64 stream).
  uint64_t seed = 1;
  /// Read workload: query texts, picked uniformly. Must be non-empty
  /// unless write_fraction == 1.
  std::vector<std::string> queries;
  /// Write workload: HTML bodies, picked uniformly. Must be non-empty
  /// when write_fraction > 0.
  std::vector<std::string> ingest_bodies;
  /// When set, the first `capture_limit` encoded request frames are
  /// written to this directory as req-<n>.bin — the fuzz seed corpus
  /// comes from real traffic.
  std::string capture_dir;
  size_t capture_limit = 32;
};

/// What one run measured. Latency is per-request round-trip in
/// microseconds over OK responses only (sheds and errors are counted,
/// not timed — a shed's fast rejection would flatter the tail).
struct LoadgenReport {
  uint64_t sent = 0;
  uint64_t responses = 0;
  uint64_t ok = 0;
  uint64_t shed = 0;    ///< kOverloaded responses (admission control)
  uint64_t errors = 0;  ///< every other non-ok response
  double wall_s = 0;
  double offered_qps = 0;   ///< sent / wall
  double achieved_qps = 0;  ///< ok responses / wall
  double mean_us = 0;
  uint64_t p50_us = 0;
  uint64_t p90_us = 0;
  uint64_t p99_us = 0;
  uint64_t p999_us = 0;
  uint64_t max_us = 0;
  /// OK responses per second per connection (index = connection). Sums
  /// to achieved_qps; a connection far below its siblings means the
  /// generator, not the server, was the bottleneck on that stream.
  std::vector<double> per_connection_qps;
};

/// Exact percentile over a SORTED latency vector (nearest-rank).
uint64_t PercentileUs(const std::vector<uint64_t>& sorted, double p);

/// Runs the workload: per connection one writer thread paces sends on
/// the arrival schedule and one reader thread matches responses to
/// send timestamps by request id. Returns the aggregated report, or an
/// error when no connection could be established.
StatusOr<LoadgenReport> RunLoadgen(const LoadgenOptions& options);

/// Renders the report as the JSON object embedded in BENCH_serving.json
/// (keys documented in docs/SERVING.md).
std::string LoadgenReportToJson(const LoadgenReport& report,
                                double target_qps, double write_fraction);

}  // namespace serve
}  // namespace webre

#endif  // WEBRE_SERVE_LOADGEN_H_
