#include "serve/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace webre {
namespace serve {

Client::Client(int fd, size_t max_frame_bytes)
    : fd_(fd), decoder_(max_frame_bytes) {}

Client::~Client() { ::close(fd_); }

StatusOr<std::unique_ptr<Client>> Client::Connect(uint16_t port,
                                                  size_t max_frame_bytes) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return Status::Internal(std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    const Status status =
        Status::Internal(std::string("connect: ") + std::strerror(errno));
    ::close(fd);
    return status;
  }
  // Request frames are written in one piece; disable Nagle so a small
  // request is not held hostage to a delayed ACK.
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return std::unique_ptr<Client>(new Client(fd, max_frame_bytes));
}

Status Client::SendRaw(std::string_view bytes) {
  size_t sent = 0;
  while (sent < bytes.size()) {
    // MSG_NOSIGNAL: a server that closed this connection (shed, bad
    // frame) must surface as an EPIPE Status, not kill the process.
    const ssize_t n =
        ::send(fd_, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(std::string("write: ") + std::strerror(errno));
    }
    sent += static_cast<size_t>(n);
  }
  return Status::Ok();
}

Status Client::Send(const Request& request) {
  std::string frame;
  EncodeRequest(request, frame);
  return SendRaw(frame);
}

StatusOr<Response> Client::Receive() {
  char buffer[64 * 1024];
  for (;;) {
    Response response;
    const FrameStatus status = decoder_.NextResponse(response);
    if (status == FrameStatus::kFrame) return response;
    if (status == FrameStatus::kBad) {
      return Status::InvalidArgument("malformed response: " +
                                     decoder_.error());
    }
    const ssize_t n = ::read(fd_, buffer, sizeof(buffer));
    if (n == 0) return Status::Internal("server closed the connection");
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(std::string("read: ") + std::strerror(errno));
    }
    decoder_.Append(std::string_view(buffer, static_cast<size_t>(n)));
  }
}

StatusOr<Response> Client::Call(const Request& request) {
  const Status sent = Send(request);
  if (!sent.ok()) return sent;
  return Receive();
}

StatusOr<std::string> Client::ReceiveLine() {
  char buffer[16 * 1024];
  for (;;) {
    const size_t nl = line_buffer_.find('\n');
    if (nl != std::string::npos) {
      std::string line = line_buffer_.substr(0, nl);
      line_buffer_.erase(0, nl + 1);
      return line;
    }
    const ssize_t n = ::read(fd_, buffer, sizeof(buffer));
    if (n == 0) return Status::Internal("server closed the connection");
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(std::string("read: ") + std::strerror(errno));
    }
    line_buffer_.append(buffer, static_cast<size_t>(n));
  }
}

}  // namespace serve
}  // namespace webre
