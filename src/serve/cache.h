#ifndef WEBRE_SERVE_CACHE_H_
#define WEBRE_SERVE_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <list>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "obs/metrics.h"
#include "repository/repository.h"

namespace webre {
namespace serve {

/// A bounded, generation-keyed cache of encoded query-response bodies —
/// the serving layer's first cross-request reuse: two clients asking
/// the same (normalized) query between the same two admissions share
/// one evaluation and one serialization.
///
/// Correctness protocol (proof sketch in DESIGN.md §15/§16): every
/// entry stores the repository's per-shard generation vector read
/// BEFORE the query was evaluated; Insert re-reads the vector and drops
/// the entry if any shard advanced meanwhile; Lookup serves an entry
/// only while the current vector still equals the stored one. Since a
/// shard bumps its generation strictly AFTER publishing a document
/// (XmlRepository::SnapshotGenerations contract), an entry can never be
/// served once any shard it could have missed a document of has
/// acknowledged that document.
///
/// The cache is STRIPED: keys hash to one of `stripes` independently
/// locked stripes (the server uses 2*loops), each with its own LRU list
/// and byte budget (`max_bytes` split evenly, remainder to the first
/// stripes). A key lives in exactly one stripe for the cache's
/// lifetime, so the generation protocol above is untouched — staleness
/// is a property of one entry, checked and cleared under that entry's
/// stripe lock. Eviction is LRU by byte footprint per stripe; a zero
/// total cap disables caching entirely. Lookup takes the key as a
/// string_view through a transparent hash, so a cache hit allocates
/// nothing.
class QueryCache {
 public:
  /// `max_bytes` is the TOTAL budget across `stripes` stripes.
  explicit QueryCache(size_t max_bytes, size_t stripes = 1);

  QueryCache(const QueryCache&) = delete;
  QueryCache& operator=(const QueryCache&) = delete;

  /// Looks up `key` (the normalized query text). On hit, copies the
  /// encoded response body into `body` and returns true. A hit requires
  /// the stored generation vector to equal `generations` exactly; a
  /// stale entry is erased and reported as a miss.
  bool Lookup(std::string_view key, const std::vector<uint64_t>& generations,
              std::string& body);

  /// Inserts the encoded body computed for `key` under the
  /// pre-evaluation generation vector `generations`. `current` must be
  /// a FRESH post-evaluation read of the repository's generations: when
  /// it differs from `generations`, a concurrent Add raced the
  /// evaluation and the entry is discarded (returns false) — caching it
  /// would key possibly-new results under the old generation, which is
  /// harmless, but keying is pointless since the old generation is gone.
  /// Bodies larger than their stripe's budget are not stored.
  bool Insert(std::string_view key, const std::vector<uint64_t>& generations,
              const std::vector<uint64_t>& current, std::string body);

  /// Current byte footprint (keys + bodies + generation vectors),
  /// summed across stripes.
  size_t bytes() const;

  size_t stripes() const { return stripes_.size(); }

  uint64_t hits() const { return hits_.value(); }
  uint64_t misses() const { return misses_.value(); }
  uint64_t evictions() const { return evictions_.value(); }

 private:
  /// Heterogeneous hash: find(string_view) probes without constructing
  /// a std::string (C++20 transparent lookup, paired with equal_to<>).
  struct TransparentHash {
    using is_transparent = void;
    size_t operator()(std::string_view key) const {
      return std::hash<std::string_view>{}(key);
    }
  };

  struct Entry {
    std::vector<uint64_t> generations;
    std::string body;
    /// Position in the owning stripe's lru (most recent at front).
    std::list<std::string>::iterator lru_pos;
  };

  using EntryMap =
      std::unordered_map<std::string, Entry, TransparentHash, std::equal_to<>>;

  /// One lock domain: its own map, LRU order and byte budget.
  struct Stripe {
    mutable std::mutex mutex;
    EntryMap entries;
    /// LRU order of keys; front = most recently used.
    std::list<std::string> lru;
    size_t bytes = 0;
    size_t max_bytes = 0;
  };

  static size_t EntryBytes(std::string_view key, const Entry& entry) {
    return key.size() + entry.body.size() +
           entry.generations.size() * sizeof(uint64_t);
  }

  Stripe& StripeOf(std::string_view key) {
    return stripes_[TransparentHash{}(key) % stripes_.size()];
  }

  /// Erases `it`, adjusting the stripe footprint. Caller holds the
  /// stripe mutex.
  static void EraseLocked(Stripe& stripe, EntryMap::iterator it);

  const size_t max_bytes_;
  std::vector<Stripe> stripes_;

  mutable obs::Counter hits_;
  mutable obs::Counter misses_;
  mutable obs::Counter evictions_;
};

/// Runs `query_text` against `repo` through `cache`, returning the
/// encoded kQuery response BODY (no frame header). This is the
/// function the server's query endpoint calls, factored out so the
/// cache-correctness differential tests drive the exact serving path
/// without sockets. `max_results` caps the matches serialized into the
/// body (total_matches always reports the full count). On a parse
/// error the Status is returned and nothing is cached.
StatusOr<std::string> CachedQueryBody(const XmlRepository& repo,
                                      QueryCache& cache,
                                      std::string_view query_text,
                                      size_t max_results);

}  // namespace serve
}  // namespace webre

#endif  // WEBRE_SERVE_CACHE_H_
