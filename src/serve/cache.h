#ifndef WEBRE_SERVE_CACHE_H_
#define WEBRE_SERVE_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <list>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/metrics.h"
#include "repository/repository.h"

namespace webre {
namespace serve {

/// A bounded, generation-keyed cache of encoded query-response bodies —
/// the serving layer's first cross-request reuse: two clients asking
/// the same (normalized) query between the same two admissions share
/// one evaluation and one serialization.
///
/// Correctness protocol (proof sketch in DESIGN.md §15): every entry
/// stores the repository's per-shard generation vector read BEFORE the
/// query was evaluated; Insert re-reads the vector and drops the entry
/// if any shard advanced meanwhile; Lookup serves an entry only while
/// the current vector still equals the stored one. Since a shard bumps
/// its generation strictly AFTER publishing a document
/// (XmlRepository::SnapshotGenerations contract), an entry can never be
/// served once any shard it could have missed a document of has
/// acknowledged that document.
///
/// Eviction is LRU by byte footprint (keys + bodies), capped by
/// `max_bytes`; a zero cap disables caching entirely. Entries whose
/// generation vector went stale are dropped lazily at Lookup. All
/// methods are thread-safe (one mutex — the guarded work is map
/// bookkeeping, microseconds next to query evaluation).
class QueryCache {
 public:
  explicit QueryCache(size_t max_bytes) : max_bytes_(max_bytes) {}

  QueryCache(const QueryCache&) = delete;
  QueryCache& operator=(const QueryCache&) = delete;

  /// Looks up `key` (the normalized query text). On hit, copies the
  /// encoded response body into `body` and returns true. A hit requires
  /// the stored generation vector to equal `generations` exactly; a
  /// stale entry is erased and reported as a miss.
  bool Lookup(const std::string& key, const std::vector<uint64_t>& generations,
              std::string& body);

  /// Inserts the encoded body computed for `key` under the
  /// pre-evaluation generation vector `generations`. `current` must be
  /// a FRESH post-evaluation read of the repository's generations: when
  /// it differs from `generations`, a concurrent Add raced the
  /// evaluation and the entry is discarded (returns false) — caching it
  /// would key possibly-new results under the old generation, which is
  /// harmless, but keying is pointless since the old generation is gone.
  /// Bodies larger than the whole cache are not stored.
  bool Insert(const std::string& key, const std::vector<uint64_t>& generations,
              const std::vector<uint64_t>& current, std::string body);

  /// Current byte footprint (keys + bodies + generation vectors).
  size_t bytes() const;

  uint64_t hits() const { return hits_.value(); }
  uint64_t misses() const { return misses_.value(); }
  uint64_t evictions() const { return evictions_.value(); }

 private:
  struct Entry {
    std::vector<uint64_t> generations;
    std::string body;
    /// Position in lru_ (most recent at front).
    std::list<std::string>::iterator lru_pos;
  };

  size_t EntryBytes(const std::string& key, const Entry& entry) const {
    return key.size() + entry.body.size() +
           entry.generations.size() * sizeof(uint64_t);
  }

  /// Erases `it`, adjusting the footprint. Caller holds mutex_.
  void EraseLocked(std::unordered_map<std::string, Entry>::iterator it);

  const size_t max_bytes_;
  mutable std::mutex mutex_;
  std::unordered_map<std::string, Entry> entries_;
  /// LRU order of keys; front = most recently used.
  std::list<std::string> lru_;
  size_t bytes_ = 0;

  mutable obs::Counter hits_;
  mutable obs::Counter misses_;
  mutable obs::Counter evictions_;
};

/// Runs `query_text` against `repo` through `cache`, returning the
/// encoded kQuery response BODY (no frame header). This is the
/// function the server's query endpoint calls, factored out so the
/// cache-correctness differential tests drive the exact serving path
/// without sockets. `max_results` caps the matches serialized into the
/// body (total_matches always reports the full count). On a parse
/// error the Status is returned and nothing is cached.
StatusOr<std::string> CachedQueryBody(const XmlRepository& repo,
                                      QueryCache& cache,
                                      std::string_view query_text,
                                      size_t max_results);

}  // namespace serve
}  // namespace webre

#endif  // WEBRE_SERVE_CACHE_H_
