#include "serve/cache.h"

#include <utility>

#include "serve/frame.h"
#include "xml/name_table.h"

namespace webre {
namespace serve {

QueryCache::QueryCache(size_t max_bytes, size_t stripes)
    : max_bytes_(max_bytes), stripes_(stripes == 0 ? 1 : stripes) {
  // Split the budget evenly; the first `max_bytes % n` stripes absorb
  // the remainder so the stripe budgets sum to max_bytes exactly (the
  // single-stripe default therefore keeps the historical budget math).
  const size_t n = stripes_.size();
  for (size_t i = 0; i < n; ++i) {
    stripes_[i].max_bytes = max_bytes / n + (i < max_bytes % n ? 1 : 0);
  }
}

bool QueryCache::Lookup(std::string_view key,
                        const std::vector<uint64_t>& generations,
                        std::string& body) {
  if (max_bytes_ == 0) {
    misses_.Increment();
    return false;
  }
  Stripe& stripe = StripeOf(key);
  std::lock_guard<std::mutex> lock(stripe.mutex);
  auto it = stripe.entries.find(key);
  if (it == stripe.entries.end()) {
    misses_.Increment();
    return false;
  }
  if (it->second.generations != generations) {
    // Some shard admitted a document since this entry was computed: the
    // result may be missing it. Stale entries are never served.
    EraseLocked(stripe, it);
    misses_.Increment();
    return false;
  }
  stripe.lru.splice(stripe.lru.begin(), stripe.lru, it->second.lru_pos);
  body = it->second.body;
  hits_.Increment();
  return true;
}

bool QueryCache::Insert(std::string_view key,
                        const std::vector<uint64_t>& generations,
                        const std::vector<uint64_t>& current,
                        std::string body) {
  if (max_bytes_ == 0) return false;
  if (generations != current) {
    // An Add raced the evaluation; the generation this result was keyed
    // under is already history, so the entry could never be served.
    return false;
  }
  Stripe& stripe = StripeOf(key);
  std::lock_guard<std::mutex> lock(stripe.mutex);
  auto it = stripe.entries.find(key);
  if (it != stripe.entries.end()) EraseLocked(stripe, it);

  Entry entry;
  entry.generations = generations;
  entry.body = std::move(body);
  const size_t cost = EntryBytes(key, entry);
  if (cost > stripe.max_bytes) return false;  // larger than the stripe

  while (stripe.bytes + cost > stripe.max_bytes && !stripe.lru.empty()) {
    EraseLocked(stripe, stripe.entries.find(stripe.lru.back()));
    evictions_.Increment();
  }
  stripe.lru.emplace_front(key);
  entry.lru_pos = stripe.lru.begin();
  stripe.bytes += cost;
  stripe.entries.emplace(stripe.lru.front(), std::move(entry));
  return true;
}

size_t QueryCache::bytes() const {
  size_t total = 0;
  for (const Stripe& stripe : stripes_) {
    std::lock_guard<std::mutex> lock(stripe.mutex);
    total += stripe.bytes;
  }
  return total;
}

void QueryCache::EraseLocked(Stripe& stripe, EntryMap::iterator it) {
  stripe.bytes -= EntryBytes(it->first, it->second);
  stripe.lru.erase(it->second.lru_pos);
  stripe.entries.erase(it);
}

StatusOr<std::string> CachedQueryBody(const XmlRepository& repo,
                                      QueryCache& cache,
                                      std::string_view query_text,
                                      size_t max_results) {
  StatusOr<PathQuery> parsed = PathQuery::Parse(query_text);
  if (!parsed.ok()) return parsed.status();
  // Parse + ToString canonicalizes spelling, so "//DATE" and "// DATE"
  // variants that parse identically share one entry.
  const std::string key = parsed->ToString();

  std::vector<uint64_t> generations;
  repo.SnapshotGenerations(generations);
  std::string body;
  if (cache.Lookup(key, generations, body)) return body;

  const std::vector<QueryMatch> matches = repo.Query(*parsed);
  Response response;
  response.type = MsgType::kQuery;
  response.total_matches = matches.size();
  const size_t returned =
      matches.size() < max_results ? matches.size() : max_results;
  response.matches.reserve(returned);
  const NameTable& names = NameTable::Global();
  for (size_t i = 0; i < returned; ++i) {
    WireMatch match;
    match.doc = matches[i].doc;
    match.pos = matches[i].pos;
    match.name.assign(names.NameOf(matches[i].name()));
    match.val.assign(matches[i].val());
    response.matches.push_back(std::move(match));
  }
  EncodeResponseBody(response, body);

  std::vector<uint64_t> current;
  repo.SnapshotGenerations(current);
  cache.Insert(key, generations, current, body);
  return body;
}

}  // namespace serve
}  // namespace webre
