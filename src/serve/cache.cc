#include "serve/cache.h"

#include <utility>

#include "serve/frame.h"
#include "xml/name_table.h"

namespace webre {
namespace serve {

bool QueryCache::Lookup(const std::string& key,
                        const std::vector<uint64_t>& generations,
                        std::string& body) {
  if (max_bytes_ == 0) {
    misses_.Increment();
    return false;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    misses_.Increment();
    return false;
  }
  if (it->second.generations != generations) {
    // Some shard admitted a document since this entry was computed: the
    // result may be missing it. Stale entries are never served.
    EraseLocked(it);
    misses_.Increment();
    return false;
  }
  lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
  body = it->second.body;
  hits_.Increment();
  return true;
}

bool QueryCache::Insert(const std::string& key,
                        const std::vector<uint64_t>& generations,
                        const std::vector<uint64_t>& current,
                        std::string body) {
  if (max_bytes_ == 0) return false;
  if (generations != current) {
    // An Add raced the evaluation; the generation this result was keyed
    // under is already history, so the entry could never be served.
    return false;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(key);
  if (it != entries_.end()) EraseLocked(it);

  Entry entry;
  entry.generations = generations;
  entry.body = std::move(body);
  const size_t cost = EntryBytes(key, entry);
  if (cost > max_bytes_) return false;  // larger than the whole cache

  while (bytes_ + cost > max_bytes_ && !lru_.empty()) {
    EraseLocked(entries_.find(lru_.back()));
    evictions_.Increment();
  }
  lru_.push_front(key);
  entry.lru_pos = lru_.begin();
  bytes_ += cost;
  entries_.emplace(key, std::move(entry));
  return true;
}

size_t QueryCache::bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return bytes_;
}

void QueryCache::EraseLocked(
    std::unordered_map<std::string, Entry>::iterator it) {
  bytes_ -= EntryBytes(it->first, it->second);
  lru_.erase(it->second.lru_pos);
  entries_.erase(it);
}

StatusOr<std::string> CachedQueryBody(const XmlRepository& repo,
                                      QueryCache& cache,
                                      std::string_view query_text,
                                      size_t max_results) {
  StatusOr<PathQuery> parsed = PathQuery::Parse(query_text);
  if (!parsed.ok()) return parsed.status();
  // Parse + ToString canonicalizes spelling, so "//DATE" and "// DATE"
  // variants that parse identically share one entry.
  const std::string key = parsed->ToString();

  std::vector<uint64_t> generations;
  repo.SnapshotGenerations(generations);
  std::string body;
  if (cache.Lookup(key, generations, body)) return body;

  const std::vector<QueryMatch> matches = repo.Query(*parsed);
  Response response;
  response.type = MsgType::kQuery;
  response.total_matches = matches.size();
  const size_t returned =
      matches.size() < max_results ? matches.size() : max_results;
  response.matches.reserve(returned);
  const NameTable& names = NameTable::Global();
  for (size_t i = 0; i < returned; ++i) {
    WireMatch match;
    match.doc = matches[i].doc;
    match.pos = matches[i].pos;
    match.name.assign(names.NameOf(matches[i].name()));
    match.val.assign(matches[i].val());
    response.matches.push_back(std::move(match));
  }
  EncodeResponseBody(response, body);

  std::vector<uint64_t> current;
  repo.SnapshotGenerations(current);
  cache.Insert(key, generations, current, body);
  return body;
}

}  // namespace serve
}  // namespace webre
