#ifndef WEBRE_SERVE_SERVER_H_
#define WEBRE_SERVE_SERVER_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "obs/metrics.h"
#include "repository/repository.h"
#include "restructure/converter.h"
#include "serve/admission.h"
#include "serve/cache.h"
#include "serve/frame.h"
#include "serve/ring.h"
#include "storage/durable_repository.h"
#include "util/resource_limits.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace webre {
namespace serve {

/// Tunables of the serving front end (CLI: `webre serve`, docs/CLI.md).
struct ServeOptions {
  /// TCP port to listen on (loopback). 0 picks an ephemeral port —
  /// read it back from Server::port() after Start.
  uint16_t port = 0;
  /// Event-loop (reactor) threads. Each loop owns its own epoll fd and
  /// a disjoint subset of the connections; accepted fds are handed out
  /// round-robin by the acceptor on loop 0. 0 = min(4, hardware
  /// threads) (CLI: --loops). `--loops 1` reproduces the single-reactor
  /// behavior exactly (same connection ids, same bytes on the wire).
  size_t loops = 0;
  /// Concurrent connections accepted ACROSS ALL LOOPS; the (n+1)-th
  /// client is answered with one kOverloaded error frame and closed
  /// (CLI: --max-clients).
  size_t max_clients = 64;
  /// Requests dispatched to workers but not yet answered, server-wide.
  /// Beyond this the server sheds instead of queueing without bound.
  size_t max_in_flight = 128;
  /// Byte cap of the generation-keyed query-result cache; 0 disables
  /// (CLI: --cache-bytes). The cache is striped into 2*loops
  /// independently-locked stripes; the cap is the total budget.
  size_t cache_bytes = 8u << 20;
  /// Worker threads executing requests (event loops never block on
  /// repository work). 0 means one per hardware thread.
  size_t worker_threads = 2;
  /// Per-connection request quota: a token bucket refilling at
  /// `per_client_qps` with `per_client_burst` capacity. <= 0 disables.
  double per_client_qps = 0.0;
  double per_client_burst = 32.0;
  /// Matches serialized into one query response (total_matches always
  /// reports the full count).
  size_t max_results = 100;
  /// Byte/step budgets for request handling. max_input_bytes doubles
  /// as the frame-payload cap, enforced on the ANNOUNCED length before
  /// any payload byte is buffered.
  ResourceLimits limits;
  /// Test seam: runs on the worker just before a request executes.
  /// A throwing hook exercises the worker-failure surface (the client
  /// sees a kInternal error carrying the message).
  std::function<void(const Request&)> before_execute;
};

/// What the server serves. `repo` is required. When `durable` is set it
/// must own `repo` (ingest then goes through the WAL and kCheckpoint
/// works); otherwise checkpoint requests fail with kFailedPrecondition.
/// `converter` powers kIngest (HTML in, document admitted); without one
/// ingest fails with kFailedPrecondition. Borrowed pointers — they must
/// outlive the server.
struct ServeContext {
  XmlRepository* repo = nullptr;
  storage::DurableRepository* durable = nullptr;
  const DocumentConverter* converter = nullptr;
};

/// One event loop's counter snapshot (the kStats endpoint exposes the
/// per-loop breakdown; --metrics-json carries the aggregates).
struct LoopStats {
  uint64_t accepted_connections = 0;  ///< connections this loop adopted
  uint64_t active_connections = 0;    ///< currently owned by this loop
  uint64_t requests = 0;              ///< requests decoded on this loop
  uint64_t shed_requests = 0;         ///< shed by this loop's admission
  uint64_t wakeups = 0;               ///< eventfd rings delivered to it
  uint64_t wakeups_coalesced = 0;     ///< rings suppressed (ring not empty)
  uint64_t handoffs = 0;              ///< connections posted to it by the
                                      ///< acceptor (cross-loop adopts)
  uint64_t completions = 0;           ///< worker responses posted to it
};

/// Point-in-time server counters plus the cache footprint.
struct ServerStats {
  obs::ServeStatsView view;
  size_t cache_bytes = 0;
  size_t active_connections = 0;
  /// Per-loop breakdown, one entry per event loop.
  std::vector<LoopStats> loops;
};

/// The network serving front end: N epoll event loops ("reactors") each
/// owning a disjoint set of connections, a ThreadPool executing
/// requests, and admission control shedding load before it queues
/// (DESIGN.md §16).
///
/// Threading model — chosen so the server is data-race-free by
/// construction, not by locking:
///   - Each LOOP THREAD owns all state of ITS connections (buffers,
///     decoders, token buckets). No other thread ever touches them.
///     Loop 0 additionally owns the listening socket; accepted fds are
///     dealt round-robin — a cross-loop handoff posts the raw fd
///     through the target loop's ring, and the target constructs the
///     Connection itself, so ownership never straddles threads.
///   - WORKERS receive a Request BY VALUE, execute it against the
///     repository (whose own synchronization covers concurrent access),
///     and post the fully encoded response bytes to the owning loop's
///     bounded MPSC ring (lock-free; see serve/ring.h). The loop's
///     eventfd is rung only on the ring's empty→non-empty transition —
///     every suppressed ring is counted in serve.wakeups_coalesced.
///   - The loop drains its ring, batches all responses queued for a
///     connection in one drain into a single writev, and drops by id
///     lookup completions for connections that closed meanwhile.
/// Shared mutable state is limited to the rings (lock-free), the
/// atomic counters, and the striped result cache.
///
/// Both wire faces (binary frames, JSON-lines debug) are handled; a
/// connection whose first byte is '{' speaks JSON. Protocol reference:
/// docs/SERVING.md.
class Server {
 public:
  Server(ServeContext context, ServeOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens and starts the loops + workers. kInternal on socket
  /// errors (message carries errno text).
  Status Start();

  /// Stops accepting, closes every connection, joins loops and workers.
  /// Idempotent; also run by the destructor.
  void Stop();

  /// The bound port (meaningful after Start; resolves port 0).
  uint16_t port() const { return port_; }

  /// The resolved event-loop count (meaningful after Start).
  size_t loops() const { return loops_.size(); }

  ServerStats stats() const;

  /// Executes one request against the context, bypassing the network —
  /// the exact function workers run. Public so endpoint logic is
  /// testable without sockets, and reused by the in-process bench.
  Response Execute(const Request& request);

 private:
  struct Connection;

  /// One ring entry: either a worker completion (`bytes` for `conn_id`)
  /// or a connection handoff from the acceptor (`adopt_fd` >= 0).
  struct LoopEvent {
    uint64_t conn_id = 0;
    int adopt_fd = -1;
    std::string bytes;
  };

  /// One reactor: epoll set, wake eventfd, owned connections, and the
  /// MPSC ring other threads reach it through. `connections`,
  /// `next_seq` and `dirty` are loop-thread-only; the ring and the
  /// counters are the only cross-thread surface.
  struct Loop {
    // Out of line: Connection is incomplete here, and the implicit
    // special members would instantiate the map's destructor.
    Loop(size_t index_in, size_t ring_capacity);
    ~Loop();

    size_t index;
    int epoll_fd = -1;
    int wake_fd = -1;
    std::thread thread;

    std::unordered_map<uint64_t, std::unique_ptr<Connection>> connections;
    uint64_t next_seq = 1;  ///< conn id = index + num_loops * next_seq
    /// Connections with output queued during the current drain/read
    /// round; flushed (one writev each) at the end of the round.
    std::vector<uint64_t> dirty;

    MpscRing<LoopEvent> ring;
    /// Events posted but not yet popped. A producer that moves this
    /// 0 -> 1 rings the eventfd; the loop never blocks while it is
    /// non-zero (see DrainEvents for the no-lost-wakeup argument).
    alignas(64) std::atomic<size_t> pending{0};

    std::atomic<uint64_t> accepted{0};
    std::atomic<uint64_t> active{0};
    std::atomic<uint64_t> requests{0};
    std::atomic<uint64_t> shed{0};
    std::atomic<uint64_t> wakeups{0};
    std::atomic<uint64_t> wakeups_coalesced{0};
    std::atomic<uint64_t> handoffs{0};
    std::atomic<uint64_t> completions{0};
  };

  void LoopThread(Loop& loop);
  void AcceptReady(Loop& loop);
  /// Takes ownership of an accepted fd on `loop`'s thread: registers it
  /// with the loop's epoll and creates the Connection.
  void AdoptConnection(Loop& loop, int fd);
  /// Reads and processes one connection's input. Returns false when the
  /// connection should be closed.
  bool ReadReady(Loop& loop, Connection& conn);
  bool WriteReady(Loop& loop, Connection& conn);
  /// Runs admission and dispatches (or sheds) one decoded request.
  void HandleRequest(Loop& loop, Connection& conn, Request request);
  /// Worker body: execute, encode, complete.
  void RunRequest(uint64_t conn_id, bool json_mode, Request request);
  /// Posts an event to `loop`'s ring, ringing its eventfd only on the
  /// empty→non-empty transition.
  void PostEvent(Loop& loop, LoopEvent event);
  void PushCompletion(uint64_t conn_id, std::string bytes);
  /// Drains the loop's ring: adopts handed-off connections and queues
  /// completions on their connections (flush happens in FlushDirty).
  void DrainEvents(Loop& loop);
  /// Queues `bytes` on `conn` and marks it dirty for the round's flush.
  void QueueOutput(Loop& loop, Connection& conn, std::string bytes);
  /// One writev per dirty connection; closes drained closing ones.
  void FlushDirty(Loop& loop);
  /// Writes as far as the socket allows (single writev per call while
  /// the socket keeps accepting). Returns false on hard error.
  bool FlushOutput(Loop& loop, Connection& conn);
  void CloseConnection(Loop& loop, uint64_t conn_id);
  void UpdateEpoll(Loop& loop, Connection& conn);
  Loop& LoopOf(uint64_t conn_id) {
    return *loops_[conn_id % loops_.size()];
  }

  /// The kQuery endpoint: encoded response body through the cache.
  StatusOr<std::string> QueryBody(const std::string& query_text);
  Response ErrorResponse(uint32_t id, WireError error, std::string message,
                         uint32_t retry_after_ms = 0) const;

  ServeContext context_;
  ServeOptions options_;
  QueryCache cache_;
  InFlightGate gate_;

  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};
  bool started_ = false;

  std::vector<std::unique_ptr<Loop>> loops_;
  /// Acceptor-thread-only (loop 0): next handoff target, round-robin.
  size_t next_loop_ = 0;
  /// Connections open across all loops — the --max-clients gate.
  std::atomic<size_t> total_active_{0};

  std::unique_ptr<ThreadPool> workers_;

  obs::Counter errors_;
  obs::Histogram request_us_;
};

/// Resolves ServeOptions::loops (0 = min(4, hardware threads)).
size_t ResolveLoops(size_t requested);

}  // namespace serve
}  // namespace webre

#endif  // WEBRE_SERVE_SERVER_H_
