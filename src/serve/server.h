#ifndef WEBRE_SERVE_SERVER_H_
#define WEBRE_SERVE_SERVER_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "obs/metrics.h"
#include "repository/repository.h"
#include "restructure/converter.h"
#include "serve/admission.h"
#include "serve/cache.h"
#include "serve/frame.h"
#include "storage/durable_repository.h"
#include "util/resource_limits.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace webre {
namespace serve {

/// Tunables of the serving front end (CLI: `webre serve`, docs/CLI.md).
struct ServeOptions {
  /// TCP port to listen on (loopback). 0 picks an ephemeral port —
  /// read it back from Server::port() after Start.
  uint16_t port = 0;
  /// Concurrent connections accepted; the (n+1)-th client is answered
  /// with one kOverloaded error frame and closed (CLI: --max-clients).
  size_t max_clients = 64;
  /// Requests dispatched to workers but not yet answered, server-wide.
  /// Beyond this the server sheds instead of queueing without bound.
  size_t max_in_flight = 128;
  /// Byte cap of the generation-keyed query-result cache; 0 disables
  /// (CLI: --cache-bytes).
  size_t cache_bytes = 8u << 20;
  /// Worker threads executing requests (the event loop never blocks on
  /// repository work). 0 means one per hardware thread.
  size_t worker_threads = 2;
  /// Per-connection request quota: a token bucket refilling at
  /// `per_client_qps` with `per_client_burst` capacity. <= 0 disables.
  double per_client_qps = 0.0;
  double per_client_burst = 32.0;
  /// Matches serialized into one query response (total_matches always
  /// reports the full count).
  size_t max_results = 100;
  /// Byte/step budgets for request handling. max_input_bytes doubles
  /// as the frame-payload cap, enforced on the ANNOUNCED length before
  /// any payload byte is buffered.
  ResourceLimits limits;
  /// Test seam: runs on the worker just before a request executes.
  /// A throwing hook exercises the worker-failure surface (the client
  /// sees a kInternal error carrying the message).
  std::function<void(const Request&)> before_execute;
};

/// What the server serves. `repo` is required. When `durable` is set it
/// must own `repo` (ingest then goes through the WAL and kCheckpoint
/// works); otherwise checkpoint requests fail with kFailedPrecondition.
/// `converter` powers kIngest (HTML in, document admitted); without one
/// ingest fails with kFailedPrecondition. Borrowed pointers — they must
/// outlive the server.
struct ServeContext {
  XmlRepository* repo = nullptr;
  storage::DurableRepository* durable = nullptr;
  const DocumentConverter* converter = nullptr;
};

/// Point-in-time server counters plus the cache footprint.
struct ServerStats {
  obs::ServeStatsView view;
  size_t cache_bytes = 0;
  size_t active_connections = 0;
};

/// The network serving front end: one epoll event loop owning every
/// connection, a ThreadPool executing requests, and admission control
/// shedding load before it queues (DESIGN.md §15).
///
/// Threading model — chosen so the server is data-race-free by
/// construction, not by locking:
///   - The LOOP THREAD owns all connection state (buffers, decoders,
///     token buckets). No other thread ever touches a Connection.
///   - WORKERS receive a Request BY VALUE, execute it against the
///     repository (whose own synchronization covers concurrent access),
///     and push the fully encoded response bytes onto a mutex-guarded
///     completion queue keyed by connection id, then ring an eventfd.
///   - The loop drains completions and writes; completions for
///     connections that closed meanwhile are dropped by id lookup.
/// The only shared mutable state is the completion queue (one mutex)
/// and the atomic counters.
///
/// Both wire faces (binary frames, JSON-lines debug) are handled; a
/// connection whose first byte is '{' speaks JSON. Protocol reference:
/// docs/SERVING.md.
class Server {
 public:
  Server(ServeContext context, ServeOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens and starts the loop + workers. kInternal on socket
  /// errors (message carries errno text).
  Status Start();

  /// Stops accepting, closes every connection, joins loop and workers.
  /// Idempotent; also run by the destructor.
  void Stop();

  /// The bound port (meaningful after Start; resolves port 0).
  uint16_t port() const { return port_; }

  ServerStats stats() const;

  /// Executes one request against the context, bypassing the network —
  /// the exact function workers run. Public so endpoint logic is
  /// testable without sockets, and reused by the in-process bench.
  Response Execute(const Request& request);

 private:
  struct Connection;
  struct Completion {
    uint64_t conn_id = 0;
    std::string bytes;
  };

  void LoopThread();
  void AcceptReady();
  /// Reads and processes one connection's input. Returns false when the
  /// connection should be closed.
  bool ReadReady(Connection& conn);
  bool WriteReady(Connection& conn);
  /// Runs admission and dispatches (or sheds) one decoded request.
  void HandleRequest(Connection& conn, Request request);
  /// Worker body: execute, encode, complete.
  void RunRequest(uint64_t conn_id, bool json_mode, Request request);
  void PushCompletion(uint64_t conn_id, std::string bytes);
  void DrainCompletions();
  /// Queues `bytes` on `conn` and flushes as far as the socket allows.
  void QueueOutput(Connection& conn, std::string_view bytes);
  void CloseConnection(uint64_t conn_id);
  void UpdateEpoll(Connection& conn);

  /// The kQuery endpoint: encoded response body through the cache.
  StatusOr<std::string> QueryBody(const std::string& query_text);
  Response ErrorResponse(uint32_t id, WireError error, std::string message,
                         uint32_t retry_after_ms = 0) const;

  ServeContext context_;
  ServeOptions options_;
  QueryCache cache_;
  InFlightGate gate_;

  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};
  bool started_ = false;

  std::thread loop_;
  std::unique_ptr<ThreadPool> workers_;

  /// Loop-thread-only: open connections by id.
  std::unordered_map<uint64_t, std::unique_ptr<Connection>> connections_;
  uint64_t next_conn_id_ = 1;

  std::mutex completions_mutex_;
  std::vector<Completion> completions_;

  obs::Counter accepted_;
  obs::Counter requests_;
  obs::Counter shed_;
  obs::Counter errors_;
  std::atomic<size_t> active_{0};
  obs::Histogram request_us_;
};

}  // namespace serve
}  // namespace webre

#endif  // WEBRE_SERVE_SERVER_H_
