#ifndef WEBRE_SERVE_RING_H_
#define WEBRE_SERVE_RING_H_

#include <atomic>
#include <cstddef>
#include <memory>
#include <utility>

namespace webre {
namespace serve {

/// A bounded multi-producer single-consumer ring (Vyukov's bounded
/// queue, restricted to one consumer). Workers post completed responses
/// and the acceptor posts connection handoffs; the owning event loop is
/// the only popper. Lock-free on both sides: every cell carries a
/// sequence number, producers claim a slot with one CAS on the tail
/// index and publish the payload with a release store of the sequence,
/// the consumer observes it with an acquire load — the payload itself
/// is never touched concurrently.
///
/// Correctness argument (DESIGN.md §16): a producer that won the CAS on
/// `tail` for position p owns cell p&mask exclusively until its release
/// store of seq = p+1; the consumer reads the cell only after observing
/// seq == head+1 (acquire), which synchronizes-with exactly that store,
/// so the moved-in payload is fully visible. The consumer's release
/// store of seq = head+capacity hands the cell back to the producer of
/// lap n+1 by the same pairing. Capacity is a power of two; TryPush
/// fails (never blocks, never overwrites) when the ring is full.
template <typename T>
class MpscRing {
 public:
  /// `capacity` is rounded up to a power of two (minimum 2).
  explicit MpscRing(size_t capacity) {
    size_t cap = 2;
    while (cap < capacity) cap <<= 1;
    cells_ = std::make_unique<Cell[]>(cap);
    mask_ = cap - 1;
    for (size_t i = 0; i <= mask_; ++i) {
      cells_[i].seq.store(i, std::memory_order_relaxed);
    }
  }

  MpscRing(const MpscRing&) = delete;
  MpscRing& operator=(const MpscRing&) = delete;

  size_t capacity() const { return mask_ + 1; }

  /// Claims a slot and moves `item` in. Returns false when the ring is
  /// full (item is left untouched). Safe from any number of threads.
  bool TryPush(T& item) {
    size_t pos = tail_.load(std::memory_order_relaxed);
    for (;;) {
      Cell& cell = cells_[pos & mask_];
      const size_t seq = cell.seq.load(std::memory_order_acquire);
      const intptr_t dif =
          static_cast<intptr_t>(seq) - static_cast<intptr_t>(pos);
      if (dif == 0) {
        if (tail_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed)) {
          cell.item = std::move(item);
          cell.seq.store(pos + 1, std::memory_order_release);
          return true;
        }
        // CAS refreshed pos; retry with it.
      } else if (dif < 0) {
        return false;  // full: the consumer has not recycled this cell
      } else {
        pos = tail_.load(std::memory_order_relaxed);
      }
    }
  }

  /// Pops the next item if one is published. SINGLE consumer only.
  bool TryPop(T& out) {
    Cell& cell = cells_[head_ & mask_];
    const size_t seq = cell.seq.load(std::memory_order_acquire);
    if (static_cast<intptr_t>(seq) - static_cast<intptr_t>(head_ + 1) != 0) {
      return false;  // not yet published (empty, or a producer mid-write)
    }
    out = std::move(cell.item);
    cell.item = T();  // drop payload promptly (strings can be large)
    cell.seq.store(head_ + mask_ + 1, std::memory_order_release);
    ++head_;
    return true;
  }

 private:
  struct alignas(64) Cell {
    std::atomic<size_t> seq{0};
    T item;
  };

  std::unique_ptr<Cell[]> cells_;
  size_t mask_ = 0;
  /// Producers race on tail_; head_ is consumer-thread-only.
  alignas(64) std::atomic<size_t> tail_{0};
  alignas(64) size_t head_ = 0;
};

}  // namespace serve
}  // namespace webre

#endif  // WEBRE_SERVE_RING_H_
