#include "serve/loadgen.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <utility>

#include "obs/metrics.h"
#include "serve/client.h"
#include "serve/frame.h"

namespace webre {
namespace serve {

namespace {

// Deterministic splitmix64 stream — the workload is reproducible from
// the seed alone.
uint64_t Splitmix64(uint64_t& state) {
  uint64_t z = (state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

double UnitUniform(uint64_t& state) {
  return static_cast<double>(Splitmix64(state) >> 11) *
         (1.0 / 9007199254740992.0);  // 2^-53
}

/// Exponential inter-arrival gap for `rate` arrivals/second.
double ExponentialGap(uint64_t& state, double rate) {
  double u = UnitUniform(state);
  if (u >= 1.0) u = 0.9999999999;
  return -std::log(1.0 - u) / rate;
}

/// Results shared across all connection threads.
struct Aggregate {
  std::mutex mutex;
  std::vector<uint64_t> latencies_us;
  uint64_t sent = 0;
  uint64_t responses = 0;
  uint64_t ok = 0;
  uint64_t shed = 0;
  uint64_t errors = 0;
  size_t captured = 0;
  /// OK responses per connection (index = connection).
  std::vector<uint64_t> per_conn_ok;
};

/// One connection's in-flight book: request id -> send timestamp.
/// Writer inserts before the frame hits the socket, reader erases on
/// the response — the only writer/reader shared state, mutex-guarded.
struct InFlightBook {
  std::mutex mutex;
  std::unordered_map<uint32_t, double> send_time_s;
  bool writer_done = false;
  uint64_t sent = 0;
};

void CaptureFrame(const LoadgenOptions& options, Aggregate& agg,
                  const std::string& frame) {
  size_t index = 0;
  {
    std::lock_guard<std::mutex> lock(agg.mutex);
    if (agg.captured >= options.capture_limit) return;
    index = agg.captured++;
  }
  const std::string path =
      options.capture_dir + "/req-" + std::to_string(index) + ".bin";
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) return;
  std::fwrite(frame.data(), 1, frame.size(), file);
  std::fclose(file);
}

void WriterThread(const LoadgenOptions& options, size_t conn_index,
                  Client& client, InFlightBook& book, Aggregate& agg) {
  uint64_t rng = options.seed * 0x9E3779B97F4A7C15ull + conn_index + 1;
  const double per_conn_qps =
      options.target_qps / static_cast<double>(options.connections);
  const double begin_s = obs::MonotonicSeconds();
  const double deadline_s = begin_s + options.duration_s;
  // The schedule is absolute: a late send does not push later arrivals
  // back (open loop), it just goes out immediately.
  double next_s = begin_s + ExponentialGap(rng, per_conn_qps);
  uint32_t next_id = 1;
  uint64_t sent = 0;

  while (next_s < deadline_s) {
    const double now_s = obs::MonotonicSeconds();
    if (next_s > now_s) {
      std::this_thread::sleep_for(
          std::chrono::duration<double>(next_s - now_s));
    }
    Request request;
    request.id = next_id++;
    const bool write = UnitUniform(rng) < options.write_fraction &&
                       !options.ingest_bodies.empty();
    if (write) {
      request.type = MsgType::kIngest;
      request.body =
          options.ingest_bodies[Splitmix64(rng) % options.ingest_bodies.size()];
    } else {
      request.type = MsgType::kQuery;
      request.body = options.queries[Splitmix64(rng) % options.queries.size()];
    }
    std::string frame;
    EncodeRequest(request, frame);
    if (!options.capture_dir.empty()) CaptureFrame(options, agg, frame);
    {
      std::lock_guard<std::mutex> lock(book.mutex);
      book.send_time_s[request.id] = obs::MonotonicSeconds();
    }
    if (!client.SendRaw(frame).ok()) {
      std::lock_guard<std::mutex> lock(book.mutex);
      book.send_time_s.erase(request.id);
      break;  // connection gone; the reader will see EOF
    }
    ++sent;
    next_s += ExponentialGap(rng, per_conn_qps);
  }
  {
    std::lock_guard<std::mutex> lock(book.mutex);
    book.writer_done = true;
    book.sent = sent;
  }
  // The reader may already be blocked in Receive() having consumed every
  // workload response before writer_done was set — in which case nothing
  // would ever wake it. One sentinel ping (id 0, never booked, skipped by
  // the reader's accounting) forces exactly one more response, after
  // which the reader re-checks the exit condition and sees writer_done.
  Request fin;
  fin.type = MsgType::kPing;
  fin.id = 0;
  std::string fin_frame;
  EncodeRequest(fin, fin_frame);
  (void)client.SendRaw(fin_frame);
  std::lock_guard<std::mutex> lock(agg.mutex);
  agg.sent += sent;
}

void ReaderThread(size_t conn_index, Client& client, InFlightBook& book,
                  Aggregate& agg) {
  uint64_t responses = 0;
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(book.mutex);
      if (book.writer_done && responses >= book.sent) break;
      if (book.writer_done && book.send_time_s.empty()) break;
    }
    StatusOr<Response> response = client.Receive();
    if (!response.ok()) break;  // server closed or framing error
    if (response->id == 0) {
      // An ok id-0 response is the writer's drain sentinel (the pong
      // for its final ping). An id-0 ERROR is unsolicited — the server
      // addressing the connection itself, e.g. the connection-cap shed
      // frame sent before any request was read — and must be counted,
      // not mistaken for the sentinel.
      if (response->ok()) continue;
      std::lock_guard<std::mutex> lock(agg.mutex);
      if (response->error == WireError::kOverloaded) {
        ++agg.shed;
      } else {
        ++agg.errors;
      }
      continue;
    }
    ++responses;
    double send_s = 0.0;
    {
      std::lock_guard<std::mutex> lock(book.mutex);
      auto it = book.send_time_s.find(response->id);
      if (it != book.send_time_s.end()) {
        send_s = it->second;
        book.send_time_s.erase(it);
      }
    }
    std::lock_guard<std::mutex> lock(agg.mutex);
    ++agg.responses;
    if (response->ok()) {
      ++agg.ok;
      ++agg.per_conn_ok[conn_index];
      if (send_s > 0.0) {
        agg.latencies_us.push_back(static_cast<uint64_t>(
            (obs::MonotonicSeconds() - send_s) * 1e6));
      }
    } else if (response->error == WireError::kOverloaded) {
      ++agg.shed;
    } else {
      ++agg.errors;
    }
  }
}

}  // namespace

uint64_t PercentileUs(const std::vector<uint64_t>& sorted, double p) {
  if (sorted.empty()) return 0;
  const double rank = p * static_cast<double>(sorted.size());
  size_t index = static_cast<size_t>(rank);
  if (index >= sorted.size()) index = sorted.size() - 1;
  return sorted[index];
}

StatusOr<LoadgenReport> RunLoadgen(const LoadgenOptions& options) {
  if (options.connections == 0) {
    return Status::InvalidArgument("loadgen needs at least one connection");
  }
  if (options.queries.empty() && options.write_fraction < 1.0) {
    return Status::InvalidArgument("loadgen read workload has no queries");
  }
  if (options.ingest_bodies.empty() && options.write_fraction > 0.0) {
    return Status::InvalidArgument("loadgen write workload has no bodies");
  }

  std::vector<std::unique_ptr<Client>> clients;
  for (size_t i = 0; i < options.connections; ++i) {
    StatusOr<std::unique_ptr<Client>> client = Client::Connect(options.port);
    if (!client.ok()) return client.status();
    clients.push_back(std::move(client.value()));
  }

  Aggregate agg;
  agg.per_conn_ok.assign(options.connections, 0);
  std::vector<InFlightBook> books(options.connections);
  std::vector<std::thread> threads;
  const double begin_s = obs::MonotonicSeconds();
  for (size_t i = 0; i < options.connections; ++i) {
    threads.emplace_back([&, i] {
      WriterThread(options, i, *clients[i], books[i], agg);
    });
    threads.emplace_back(
        [&, i] { ReaderThread(i, *clients[i], books[i], agg); });
  }
  for (std::thread& thread : threads) thread.join();
  const double wall_s = obs::MonotonicSeconds() - begin_s;

  LoadgenReport report;
  report.sent = agg.sent;
  report.responses = agg.responses;
  report.ok = agg.ok;
  report.shed = agg.shed;
  report.errors = agg.errors;
  report.wall_s = wall_s;
  if (wall_s > 0) {
    report.offered_qps = static_cast<double>(agg.sent) / wall_s;
    report.achieved_qps = static_cast<double>(agg.ok) / wall_s;
    report.per_connection_qps.reserve(agg.per_conn_ok.size());
    for (uint64_t ok : agg.per_conn_ok) {
      report.per_connection_qps.push_back(static_cast<double>(ok) / wall_s);
    }
  }
  std::sort(agg.latencies_us.begin(), agg.latencies_us.end());
  if (!agg.latencies_us.empty()) {
    uint64_t sum = 0;
    for (uint64_t v : agg.latencies_us) sum += v;
    report.mean_us = static_cast<double>(sum) /
                     static_cast<double>(agg.latencies_us.size());
    report.p50_us = PercentileUs(agg.latencies_us, 0.50);
    report.p90_us = PercentileUs(agg.latencies_us, 0.90);
    report.p99_us = PercentileUs(agg.latencies_us, 0.99);
    report.p999_us = PercentileUs(agg.latencies_us, 0.999);
    report.max_us = agg.latencies_us.back();
  }
  return report;
}

std::string LoadgenReportToJson(const LoadgenReport& report,
                                double target_qps, double write_fraction) {
  char buffer[256];
  std::string out = "{";
  std::snprintf(buffer, sizeof(buffer),
                "\"target_qps\":%.1f,\"write_fraction\":%.2f,", target_qps,
                write_fraction);
  out += buffer;
  out += "\"sent\":" + std::to_string(report.sent) + ",";
  out += "\"responses\":" + std::to_string(report.responses) + ",";
  out += "\"ok\":" + std::to_string(report.ok) + ",";
  out += "\"shed\":" + std::to_string(report.shed) + ",";
  out += "\"errors\":" + std::to_string(report.errors) + ",";
  std::snprintf(buffer, sizeof(buffer),
                "\"wall_s\":%.3f,\"offered_qps\":%.1f,\"achieved_qps\":%.1f,"
                "\"mean_us\":%.1f,",
                report.wall_s, report.offered_qps, report.achieved_qps,
                report.mean_us);
  out += buffer;
  out += "\"p50_us\":" + std::to_string(report.p50_us) + ",";
  out += "\"p90_us\":" + std::to_string(report.p90_us) + ",";
  out += "\"p99_us\":" + std::to_string(report.p99_us) + ",";
  out += "\"p999_us\":" + std::to_string(report.p999_us) + ",";
  out += "\"max_us\":" + std::to_string(report.max_us) + ",";
  out += "\"connections\":" +
         std::to_string(report.per_connection_qps.size()) + ",";
  out += "\"per_connection_qps\":[";
  for (size_t i = 0; i < report.per_connection_qps.size(); ++i) {
    if (i != 0) out += ',';
    std::snprintf(buffer, sizeof(buffer), "%.1f",
                  report.per_connection_qps[i]);
    out += buffer;
  }
  out += "]}";
  return out;
}

}  // namespace serve
}  // namespace webre
