#include "serve/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <deque>
#include <exception>
#include <utility>

#include "schema/dtd_builder.h"
#include "schema/frequent_paths.h"

namespace webre {
namespace serve {

namespace {

/// epoll user-data ids for the two non-connection descriptors. Real
/// connection ids are loop_index + num_loops * seq with seq >= 1, so
/// they never collide with kListenId.
constexpr uint64_t kListenId = 0;
constexpr uint64_t kWakeId = ~uint64_t{0};

/// writev batch width per flush round (IOV_MAX is much larger; 64
/// already amortizes the syscall across a full drain's responses).
constexpr int kMaxIov = 64;

Status Errno(const char* what) {
  return Status::Internal(std::string(what) + ": " + std::strerror(errno));
}

void AppendJsonKv(std::string& out, const char* key, uint64_t value,
                  bool comma = true) {
  out += '"';
  out += key;
  out += "\":";
  out += std::to_string(value);
  if (comma) out += ',';
}

}  // namespace

size_t ResolveLoops(size_t requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return std::min<size_t>(4, hw == 0 ? 1 : hw);
}

/// All fields are loop-thread-only (see the class comment).
struct Server::Connection {
  Connection(uint64_t id_in, int fd_in, size_t max_frame_bytes,
             double per_client_qps, double per_client_burst)
      : id(id_in),
        fd(fd_in),
        decoder(max_frame_bytes),
        bucket(per_client_qps, per_client_burst) {}

  uint64_t id;
  int fd;
  /// Unset until the first byte arrives; '{' selects JSON-lines mode.
  bool mode_known = false;
  bool json_mode = false;
  FrameDecoder decoder;
  /// JSON mode: bytes of the (possibly partial) current line.
  std::string json_buffer;
  /// Pending output chunks, oldest first. The front chunk's first
  /// `out_head` bytes are already on the wire; `out_bytes` is the
  /// total still to write across all chunks. Kept as chunks (not one
  /// string) so a flush is one writev with zero copying.
  std::deque<std::string> out;
  size_t out_head = 0;
  size_t out_bytes = 0;
  bool want_write = false;
  /// Close once the output buffer drains (set after a kBadFrame error).
  bool closing = false;
  /// Already on the loop's dirty list this round.
  bool dirty = false;
  TokenBucket bucket;
};

Server::Loop::Loop(size_t index_in, size_t ring_capacity)
    : index(index_in), ring(ring_capacity) {}

Server::Loop::~Loop() = default;

Server::Server(ServeContext context, ServeOptions options)
    : context_(context),
      options_(std::move(options)),
      cache_(options_.cache_bytes, 2 * ResolveLoops(options_.loops)),
      gate_(options_.max_in_flight) {}

Server::~Server() { Stop(); }

Status Server::Start() {
  if (started_) return Status::FailedPrecondition("server already started");
  if (context_.repo == nullptr) {
    return Status::InvalidArgument("ServeContext.repo is required");
  }

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                        0);
  if (listen_fd_ < 0) return Errno("socket");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(options_.port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    return Errno("bind");
  }
  if (::listen(listen_fd_, 128) < 0) return Errno("listen");
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) <
      0) {
    return Errno("getsockname");
  }
  port_ = ntohs(addr.sin_port);

  const size_t num_loops = ResolveLoops(options_.loops);
  // Sized so TryPush cannot fail in steady state: at most max_in_flight
  // completions are outstanding (the gate releases before the push, so
  // workers can briefly overshoot by worker_threads), plus max_clients
  // possible handoffs queued at once.
  const size_t ring_capacity = options_.max_in_flight + options_.max_clients +
                               options_.worker_threads + 16;
  loops_.clear();
  for (size_t i = 0; i < num_loops; ++i) {
    loops_.push_back(std::make_unique<Loop>(i, ring_capacity));
  }
  for (auto& loop : loops_) {
    loop->epoll_fd = ::epoll_create1(EPOLL_CLOEXEC);
    if (loop->epoll_fd < 0) return Errno("epoll_create1");
    loop->wake_fd = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
    if (loop->wake_fd < 0) return Errno("eventfd");
    epoll_event event{};
    event.events = EPOLLIN;
    event.data.u64 = kWakeId;
    ::epoll_ctl(loop->epoll_fd, EPOLL_CTL_ADD, loop->wake_fd, &event);
  }
  // Single acceptor: only loop 0 watches the listening socket and deals
  // accepted fds round-robin (cross-loop via the target's ring).
  epoll_event event{};
  event.events = EPOLLIN;
  event.data.u64 = kListenId;
  ::epoll_ctl(loops_[0]->epoll_fd, EPOLL_CTL_ADD, listen_fd_, &event);

  workers_ = std::make_unique<ThreadPool>(options_.worker_threads);
  stopping_.store(false, std::memory_order_release);
  next_loop_ = 0;
  for (auto& loop : loops_) {
    Loop* raw = loop.get();
    loop->thread = std::thread([this, raw] { LoopThread(*raw); });
  }
  started_ = true;
  return Status::Ok();
}

void Server::Stop() {
  if (!started_) return;
  started_ = false;
  stopping_.store(true, std::memory_order_release);
  const uint64_t one = 1;
  for (auto& loop : loops_) {
    [[maybe_unused]] ssize_t n = ::write(loop->wake_fd, &one, sizeof(one));
  }
  for (auto& loop : loops_) {
    if (loop->thread.joinable()) loop->thread.join();
  }
  // Workers may still be finishing requests; their completions land in
  // the rings and are simply never delivered.
  workers_->Wait();
  workers_.reset();
  for (auto& loop : loops_) {
    LoopEvent event;
    while (loop->ring.TryPop(event)) {
      if (event.adopt_fd >= 0) ::close(event.adopt_fd);
    }
    for (auto& [id, conn] : loop->connections) ::close(conn->fd);
    loop->connections.clear();
    ::close(loop->epoll_fd);
    ::close(loop->wake_fd);
    loop->epoll_fd = loop->wake_fd = -1;
  }
  ::close(listen_fd_);
  listen_fd_ = -1;
}

ServerStats Server::stats() const {
  ServerStats stats;
  for (const auto& loop : loops_) {
    LoopStats entry;
    entry.accepted_connections =
        loop->accepted.load(std::memory_order_relaxed);
    entry.active_connections = loop->active.load(std::memory_order_relaxed);
    entry.requests = loop->requests.load(std::memory_order_relaxed);
    entry.shed_requests = loop->shed.load(std::memory_order_relaxed);
    entry.wakeups = loop->wakeups.load(std::memory_order_relaxed);
    entry.wakeups_coalesced =
        loop->wakeups_coalesced.load(std::memory_order_relaxed);
    entry.handoffs = loop->handoffs.load(std::memory_order_relaxed);
    entry.completions = loop->completions.load(std::memory_order_relaxed);
    stats.view.accepted_connections += entry.accepted_connections;
    stats.view.active_connections += entry.active_connections;
    stats.view.requests += entry.requests;
    stats.view.shed_requests += entry.shed_requests;
    stats.view.wakeups += entry.wakeups;
    stats.view.wakeups_coalesced += entry.wakeups_coalesced;
    stats.view.handoffs += entry.handoffs;
    stats.loops.push_back(entry);
  }
  stats.view.loops = loops_.size();
  stats.view.errors = errors_.value();
  stats.view.cache_hits = cache_.hits();
  stats.view.cache_misses = cache_.misses();
  stats.view.cache_evictions = cache_.evictions();
  stats.view.max_queue_depth = gate_.high_water();
  stats.view.request_us = request_us_.Snapshot();
  stats.cache_bytes = cache_.bytes();
  stats.active_connections = stats.view.active_connections;
  return stats;
}

void Server::LoopThread(Loop& loop) {
  epoll_event events[64];
  while (!stopping_.load(std::memory_order_acquire)) {
    // Never block while ring events are pending (or a producer is
    // mid-publish): a producer increments `pending` BEFORE its push, so
    // a non-zero read here covers entries TryPop cannot see yet — the
    // no-lost-wakeup half of the coalescing argument (DESIGN.md §16).
    const int timeout_ms =
        loop.pending.load(std::memory_order_acquire) > 0 ? 0 : 100;
    const int n = ::epoll_wait(loop.epoll_fd, events, 64, timeout_ms);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    for (int i = 0; i < n; ++i) {
      const uint64_t id = events[i].data.u64;
      if (id == kListenId) {
        AcceptReady(loop);
        continue;
      }
      if (id == kWakeId) {
        uint64_t drain = 0;
        [[maybe_unused]] ssize_t r =
            ::read(loop.wake_fd, &drain, sizeof(drain));
        continue;  // the ring itself is drained below
      }
      auto it = loop.connections.find(id);
      if (it == loop.connections.end()) continue;  // closed this batch
      Connection& conn = *it->second;
      bool alive = true;
      if ((events[i].events & (EPOLLHUP | EPOLLERR)) != 0) {
        alive = false;
      } else {
        if ((events[i].events & EPOLLIN) != 0) alive = ReadReady(loop, conn);
        if (alive && (events[i].events & EPOLLOUT) != 0) {
          alive = WriteReady(loop, conn);
        }
      }
      if (!alive) CloseConnection(loop, id);
    }
    DrainEvents(loop);
    FlushDirty(loop);
  }
}

void Server::AcceptReady(Loop& loop) {
  for (;;) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) return;  // EAGAIN or transient error: wait for epoll
    if (total_active_.load(std::memory_order_relaxed) >=
        options_.max_clients) {
      // Connection-cap shed: one typed error frame, then close. The
      // frame is binary regardless of the mode the client intended —
      // it never got to send its first byte.
      loop.shed.fetch_add(1, std::memory_order_relaxed);
      Response response = ErrorResponse(
          0, WireError::kOverloaded,
          "connection cap (max_clients=" +
              std::to_string(options_.max_clients) + ") reached",
          /*retry_after_ms=*/50);
      std::string bytes;
      EncodeResponse(response, bytes);
      [[maybe_unused]] ssize_t n =
          ::send(fd, bytes.data(), bytes.size(), MSG_NOSIGNAL);
      ::close(fd);
      continue;
    }
    total_active_.fetch_add(1, std::memory_order_relaxed);
    Loop& target = *loops_[next_loop_];
    next_loop_ = (next_loop_ + 1) % loops_.size();
    if (&target == &loop) {
      AdoptConnection(loop, fd);
    } else {
      target.handoffs.fetch_add(1, std::memory_order_relaxed);
      LoopEvent event;
      event.adopt_fd = fd;
      PostEvent(target, std::move(event));
    }
  }
}

void Server::AdoptConnection(Loop& loop, int fd) {
  const uint64_t id = loop.index + loops_.size() * loop.next_seq++;
  auto conn = std::make_unique<Connection>(
      id, fd, options_.limits.max_input_bytes, options_.per_client_qps,
      options_.per_client_burst);
  epoll_event event{};
  event.events = EPOLLIN;
  event.data.u64 = id;
  ::epoll_ctl(loop.epoll_fd, EPOLL_CTL_ADD, fd, &event);
  loop.connections.emplace(id, std::move(conn));
  loop.accepted.fetch_add(1, std::memory_order_relaxed);
  loop.active.fetch_add(1, std::memory_order_relaxed);
}

bool Server::ReadReady(Loop& loop, Connection& conn) {
  char buffer[64 * 1024];
  for (;;) {
    const ssize_t n = ::read(conn.fd, buffer, sizeof(buffer));
    if (n == 0) return false;  // peer closed
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      return false;
    }
    std::string_view bytes(buffer, static_cast<size_t>(n));
    if (!conn.mode_known) {
      conn.mode_known = true;
      conn.json_mode = bytes.front() == '{';
    }
    if (conn.json_mode) {
      conn.json_buffer.append(bytes);
      if (conn.json_buffer.size() > options_.limits.max_input_bytes) {
        Response response = ErrorResponse(
            0, WireError::kBadFrame, "debug request line exceeds frame cap");
        QueueOutput(loop, conn, ResponseToJsonLine(response) + "\n");
        conn.closing = true;
        break;
      }
      size_t start = 0;
      for (size_t nl = conn.json_buffer.find('\n', start);
           nl != std::string::npos;
           nl = conn.json_buffer.find('\n', start)) {
        const std::string_view line(conn.json_buffer.data() + start,
                                    nl - start);
        start = nl + 1;
        if (line.empty()) continue;
        Request request;
        const Status status = ParseJsonRequest(line, request);
        if (!status.ok()) {
          Response response = ErrorResponse(0, WireError::kBadFrame,
                                            status.message());
          QueueOutput(loop, conn, ResponseToJsonLine(response) + "\n");
          conn.closing = true;
          break;
        }
        HandleRequest(loop, conn, std::move(request));
      }
      conn.json_buffer.erase(0, start);
      if (conn.closing) break;
    } else {
      conn.decoder.Append(bytes);
      for (;;) {
        Request request;
        const FrameStatus status = conn.decoder.NextRequest(request);
        if (status == FrameStatus::kNeedMore) break;
        if (status == FrameStatus::kBad) {
          // Framing is unrecoverable: answer with the typed error and
          // close once it drains (docs/SERVING.md, error taxonomy).
          Response response = ErrorResponse(0, WireError::kBadFrame,
                                            conn.decoder.error());
          std::string encoded;
          EncodeResponse(response, encoded);
          QueueOutput(loop, conn, std::move(encoded));
          conn.closing = true;
          break;
        }
        HandleRequest(loop, conn, std::move(request));
      }
      if (conn.closing) break;
    }
  }
  return !(conn.closing && conn.out_bytes == 0);
}

bool Server::WriteReady(Loop& loop, Connection& conn) {
  if (!FlushOutput(loop, conn)) return false;
  return !(conn.closing && conn.out_bytes == 0);
}

void Server::HandleRequest(Loop& loop, Connection& conn, Request request) {
  loop.requests.fetch_add(1, std::memory_order_relaxed);
  Admission admission = conn.bucket.Admit(obs::MonotonicSeconds());
  if (admission.admitted) admission = gate_.TryAcquire();
  if (!admission.admitted) {
    loop.shed.fetch_add(1, std::memory_order_relaxed);
    Response response = ErrorResponse(
        request.id, WireError::kOverloaded,
        std::string("shed by ") + admission.reason + " admission control",
        admission.retry_after_ms);
    if (conn.json_mode) {
      QueueOutput(loop, conn, ResponseToJsonLine(response) + "\n");
    } else {
      std::string encoded;
      EncodeResponse(response, encoded);
      QueueOutput(loop, conn, std::move(encoded));
    }
    return;
  }
  // Admitted: workers own the request from here; the gate slot is
  // released by RunRequest.
  const uint64_t conn_id = conn.id;
  const bool json_mode = conn.json_mode;
  workers_->Submit([this, conn_id, json_mode,
                    request = std::move(request)]() mutable {
    RunRequest(conn_id, json_mode, std::move(request));
  });
}

void Server::RunRequest(uint64_t conn_id, bool json_mode, Request request) {
  const double begin_s = obs::MonotonicSeconds();
  std::string bytes;
  Response response;
  bool encoded = false;
  // The library is exception-free, but the runtime is not (bad_alloc
  // above all) and the before_execute test seam may throw: a worker
  // failure becomes a kInternal response instead of a silent drop —
  // the same message ThreadPool would have recorded.
  try {
    if (options_.before_execute) options_.before_execute(request);
    if (!json_mode && request.type == MsgType::kQuery) {
      // Binary fast path: the cached encoded BODY is reused verbatim;
      // only the 12-byte header is stamped per request.
      StatusOr<std::string> body = QueryBody(request.body);
      if (body.ok()) {
        EncodeResponseHeader(MsgType::kQuery, request.id, body.value().size(),
                             bytes);
        bytes += body.value();
        encoded = true;
      } else {
        response = ErrorResponse(request.id, StatusToWireError(body.status()),
                                 body.status().message());
      }
    } else {
      response = Execute(request);
    }
  } catch (const std::exception& e) {
    response = ErrorResponse(request.id, WireError::kInternal,
                             std::string("worker task failed: ") + e.what());
    encoded = false;
    bytes.clear();
  } catch (...) {
    response = ErrorResponse(request.id, WireError::kInternal,
                             "worker task failed: unknown exception");
    encoded = false;
    bytes.clear();
  }
  gate_.Release();
  if (!encoded) {
    if (!response.ok()) errors_.Increment();
    if (json_mode) {
      bytes = ResponseToJsonLine(response) + "\n";
    } else {
      EncodeResponse(response, bytes);
    }
  }
  request_us_.Record(
      static_cast<uint64_t>((obs::MonotonicSeconds() - begin_s) * 1e6));
  PushCompletion(conn_id, std::move(bytes));
}

void Server::PostEvent(Loop& loop, LoopEvent event) {
  // `pending` goes up BEFORE the push so the consumer, which subtracts
  // only what it actually popped, can never read 0 while an entry is
  // published-but-unseen. Ringing only on 0 -> 1 is what makes the
  // eventfd write per-batch instead of per-completion.
  const size_t prev = loop.pending.fetch_add(1, std::memory_order_acq_rel);
  while (!loop.ring.TryPush(event)) {
    // The ring is sized for the in-flight gate + handoff worst case, so
    // this is defensive only (the consumer is draining concurrently).
    std::this_thread::yield();
  }
  if (prev == 0) {
    loop.wakeups.fetch_add(1, std::memory_order_relaxed);
    const uint64_t one = 1;
    [[maybe_unused]] ssize_t n = ::write(loop.wake_fd, &one, sizeof(one));
  } else {
    loop.wakeups_coalesced.fetch_add(1, std::memory_order_relaxed);
  }
}

void Server::PushCompletion(uint64_t conn_id, std::string bytes) {
  Loop& loop = LoopOf(conn_id);
  loop.completions.fetch_add(1, std::memory_order_relaxed);
  LoopEvent event;
  event.conn_id = conn_id;
  event.bytes = std::move(bytes);
  PostEvent(loop, std::move(event));
}

void Server::DrainEvents(Loop& loop) {
  size_t drained = 0;
  LoopEvent event;
  while (loop.ring.TryPop(event)) {
    ++drained;
    if (event.adopt_fd >= 0) {
      AdoptConnection(loop, event.adopt_fd);
      continue;
    }
    auto it = loop.connections.find(event.conn_id);
    if (it == loop.connections.end()) continue;  // closed mid-flight
    QueueOutput(loop, *it->second, std::move(event.bytes));
  }
  if (drained > 0) {
    loop.pending.fetch_sub(drained, std::memory_order_acq_rel);
  }
}

void Server::QueueOutput(Loop& loop, Connection& conn, std::string bytes) {
  if (bytes.empty()) return;
  conn.out_bytes += bytes.size();
  conn.out.push_back(std::move(bytes));
  if (!conn.dirty) {
    conn.dirty = true;
    loop.dirty.push_back(conn.id);
  }
}

void Server::FlushDirty(Loop& loop) {
  if (loop.dirty.empty()) return;
  for (const uint64_t id : loop.dirty) {
    auto it = loop.connections.find(id);
    if (it == loop.connections.end()) continue;  // closed after queueing
    Connection& conn = *it->second;
    conn.dirty = false;
    if (!FlushOutput(loop, conn)) {
      CloseConnection(loop, id);
      continue;
    }
    if (conn.closing && conn.out_bytes == 0) CloseConnection(loop, id);
  }
  loop.dirty.clear();
}

bool Server::FlushOutput(Loop& loop, Connection& conn) {
  while (conn.out_bytes > 0) {
    iovec iov[kMaxIov];
    int iov_count = 0;
    size_t head = conn.out_head;
    for (const std::string& chunk : conn.out) {
      if (iov_count == kMaxIov) break;
      iov[iov_count].iov_base = const_cast<char*>(chunk.data()) + head;
      iov[iov_count].iov_len = chunk.size() - head;
      head = 0;
      ++iov_count;
    }
    // sendmsg rather than writev for MSG_NOSIGNAL: a peer that closed
    // mid-response must surface as EPIPE (handled below), not SIGPIPE.
    msghdr msg = {};
    msg.msg_iov = iov;
    msg.msg_iovlen = static_cast<size_t>(iov_count);
    const ssize_t n = ::sendmsg(conn.fd, &msg, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        if (!conn.want_write) {
          conn.want_write = true;
          UpdateEpoll(loop, conn);
        }
        return true;  // epoll will deliver EPOLLOUT
      }
      return false;  // hard error: caller closes
    }
    size_t left = static_cast<size_t>(n);
    conn.out_bytes -= left;
    while (left > 0) {
      std::string& front = conn.out.front();
      const size_t avail = front.size() - conn.out_head;
      if (left >= avail) {
        left -= avail;
        conn.out.pop_front();
        conn.out_head = 0;
      } else {
        conn.out_head += left;
        left = 0;
      }
    }
  }
  if (conn.want_write) {
    conn.want_write = false;
    UpdateEpoll(loop, conn);
  }
  return true;
}

void Server::CloseConnection(Loop& loop, uint64_t conn_id) {
  auto it = loop.connections.find(conn_id);
  if (it == loop.connections.end()) return;
  ::epoll_ctl(loop.epoll_fd, EPOLL_CTL_DEL, it->second->fd, nullptr);
  ::close(it->second->fd);
  loop.connections.erase(it);
  loop.active.fetch_sub(1, std::memory_order_relaxed);
  total_active_.fetch_sub(1, std::memory_order_relaxed);
}

void Server::UpdateEpoll(Loop& loop, Connection& conn) {
  epoll_event event{};
  event.events = EPOLLIN | (conn.want_write ? EPOLLOUT : 0u);
  event.data.u64 = conn.id;
  ::epoll_ctl(loop.epoll_fd, EPOLL_CTL_MOD, conn.fd, &event);
}

StatusOr<std::string> Server::QueryBody(const std::string& query_text) {
  return CachedQueryBody(*context_.repo, cache_, query_text,
                         options_.max_results);
}

Response Server::ErrorResponse(uint32_t id, WireError error,
                               std::string message,
                               uint32_t retry_after_ms) const {
  Response response;
  response.type = MsgType::kError;
  response.id = id;
  response.error = error;
  response.message = std::move(message);
  response.retry_after_ms = retry_after_ms;
  return response;
}

Response Server::Execute(const Request& request) {
  Response response;
  response.id = request.id;
  response.type = request.type;
  switch (request.type) {
    case MsgType::kPing:
      break;
    case MsgType::kIngest: {
      if (context_.converter == nullptr) {
        return ErrorResponse(request.id, WireError::kFailedPrecondition,
                             "server has no document converter");
      }
      StatusOr<std::unique_ptr<Node>> tree =
          context_.converter->TryConvert(request.body);
      if (!tree.ok()) {
        return ErrorResponse(request.id, StatusToWireError(tree.status()),
                             tree.status().message());
      }
      StatusOr<DocId> id =
          context_.durable != nullptr
              ? context_.durable->Add(std::move(tree.value()))
              : context_.repo->Add(std::move(tree.value()));
      if (!id.ok()) {
        return ErrorResponse(request.id, StatusToWireError(id.status()),
                             id.status().message());
      }
      response.doc_id = id.value();
      break;
    }
    case MsgType::kQuery: {
      StatusOr<std::string> body = QueryBody(request.body);
      if (!body.ok()) {
        return ErrorResponse(request.id, StatusToWireError(body.status()),
                             body.status().message());
      }
      if (!DecodeResponseBody(body.value(), response)) {
        return ErrorResponse(request.id, WireError::kInternal,
                             "self-encoded query body failed to decode");
      }
      break;
    }
    case MsgType::kSchema: {
      const MajoritySchema schema = context_.repo->DiscoverSchema();
      response.schema_text = schema.ToString();
      response.dtd_text = BuildDtd(schema).ToString(/*attlist=*/false);
      break;
    }
    case MsgType::kStats: {
      const ServerStats server = stats();
      const RepositoryStats repo = context_.repo->Stats();
      std::string json = "{\"serve\":{";
      AppendJsonKv(json, "accepted_connections",
                   server.view.accepted_connections);
      AppendJsonKv(json, "active_connections", server.view.active_connections);
      AppendJsonKv(json, "requests", server.view.requests);
      AppendJsonKv(json, "shed_requests", server.view.shed_requests);
      AppendJsonKv(json, "errors", server.view.errors);
      AppendJsonKv(json, "cache_hits", server.view.cache_hits);
      AppendJsonKv(json, "cache_misses", server.view.cache_misses);
      AppendJsonKv(json, "cache_evictions", server.view.cache_evictions);
      AppendJsonKv(json, "cache_bytes", server.cache_bytes);
      AppendJsonKv(json, "max_queue_depth", server.view.max_queue_depth);
      AppendJsonKv(json, "loops", server.view.loops);
      AppendJsonKv(json, "wakeups", server.view.wakeups);
      AppendJsonKv(json, "wakeups_coalesced", server.view.wakeups_coalesced);
      AppendJsonKv(json, "handoffs", server.view.handoffs, /*comma=*/false);
      json += "},\"per_loop\":[";
      for (size_t i = 0; i < server.loops.size(); ++i) {
        if (i > 0) json += ',';
        json += '{';
        AppendJsonKv(json, "accepted_connections",
                     server.loops[i].accepted_connections);
        AppendJsonKv(json, "active_connections",
                     server.loops[i].active_connections);
        AppendJsonKv(json, "requests", server.loops[i].requests);
        AppendJsonKv(json, "shed_requests", server.loops[i].shed_requests);
        AppendJsonKv(json, "wakeups", server.loops[i].wakeups);
        AppendJsonKv(json, "wakeups_coalesced",
                     server.loops[i].wakeups_coalesced);
        AppendJsonKv(json, "handoffs", server.loops[i].handoffs);
        AppendJsonKv(json, "completions", server.loops[i].completions,
                     /*comma=*/false);
        json += '}';
      }
      json += "],\"repository\":{";
      AppendJsonKv(json, "documents", repo.documents);
      AppendJsonKv(json, "elements", repo.elements);
      AppendJsonKv(json, "distinct_paths", repo.distinct_paths);
      AppendJsonKv(json, "flat_bytes", repo.flat_bytes, /*comma=*/false);
      json += "}";
      if (context_.durable != nullptr) {
        const obs::StorageStatsView storage = context_.durable->stats();
        json += ",\"storage\":{";
        AppendJsonKv(json, "wal_appends", storage.wal_appends);
        AppendJsonKv(json, "wal_replayed", storage.wal_replayed);
        AppendJsonKv(json, "snapshot_bytes", storage.snapshot_bytes,
                     /*comma=*/false);
        json += "}";
      }
      json += "}";
      response.stats_json = std::move(json);
      break;
    }
    case MsgType::kCheckpoint: {
      if (context_.durable == nullptr) {
        return ErrorResponse(request.id, WireError::kFailedPrecondition,
                             "checkpoint requires a durable repository "
                             "(start the server with --data-dir)");
      }
      const Status status = context_.durable->Checkpoint();
      if (!status.ok()) {
        return ErrorResponse(request.id, StatusToWireError(status),
                             status.message());
      }
      break;
    }
    case MsgType::kError:
      return ErrorResponse(request.id, WireError::kBadFrame,
                           "kError is response-only");
  }
  return response;
}

}  // namespace serve
}  // namespace webre
