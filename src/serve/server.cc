#include "serve/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <exception>
#include <utility>

#include "schema/dtd_builder.h"
#include "schema/frequent_paths.h"

namespace webre {
namespace serve {

namespace {

/// epoll user-data ids for the two non-connection descriptors.
constexpr uint64_t kListenId = 0;
constexpr uint64_t kWakeId = ~uint64_t{0};

Status Errno(const char* what) {
  return Status::Internal(std::string(what) + ": " + std::strerror(errno));
}

void AppendJsonKv(std::string& out, const char* key, uint64_t value,
                  bool comma = true) {
  out += '"';
  out += key;
  out += "\":";
  out += std::to_string(value);
  if (comma) out += ',';
}

}  // namespace

/// All fields are loop-thread-only (see the class comment).
struct Server::Connection {
  Connection(uint64_t id_in, int fd_in, size_t max_frame_bytes,
             double per_client_qps, double per_client_burst)
      : id(id_in),
        fd(fd_in),
        decoder(max_frame_bytes),
        bucket(per_client_qps, per_client_burst) {}

  uint64_t id;
  int fd;
  /// Unset until the first byte arrives; '{' selects JSON-lines mode.
  bool mode_known = false;
  bool json_mode = false;
  FrameDecoder decoder;
  /// JSON mode: bytes of the (possibly partial) current line.
  std::string json_buffer;
  /// Pending output; [out_pos, out.size()) still to write.
  std::string out;
  size_t out_pos = 0;
  bool want_write = false;
  /// Close once the output buffer drains (set after a kBadFrame error).
  bool closing = false;
  TokenBucket bucket;
};

Server::Server(ServeContext context, ServeOptions options)
    : context_(context),
      options_(std::move(options)),
      cache_(options_.cache_bytes),
      gate_(options_.max_in_flight) {}

Server::~Server() { Stop(); }

Status Server::Start() {
  if (started_) return Status::FailedPrecondition("server already started");
  if (context_.repo == nullptr) {
    return Status::InvalidArgument("ServeContext.repo is required");
  }

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                        0);
  if (listen_fd_ < 0) return Errno("socket");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(options_.port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    return Errno("bind");
  }
  if (::listen(listen_fd_, 128) < 0) return Errno("listen");
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) <
      0) {
    return Errno("getsockname");
  }
  port_ = ntohs(addr.sin_port);

  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) return Errno("epoll_create1");
  wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (wake_fd_ < 0) return Errno("eventfd");

  epoll_event event{};
  event.events = EPOLLIN;
  event.data.u64 = kListenId;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &event);
  event.data.u64 = kWakeId;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &event);

  workers_ = std::make_unique<ThreadPool>(options_.worker_threads);
  stopping_.store(false, std::memory_order_release);
  loop_ = std::thread([this] { LoopThread(); });
  started_ = true;
  return Status::Ok();
}

void Server::Stop() {
  if (!started_) return;
  started_ = false;
  stopping_.store(true, std::memory_order_release);
  const uint64_t one = 1;
  [[maybe_unused]] ssize_t n = ::write(wake_fd_, &one, sizeof(one));
  loop_.join();
  // Workers may still be finishing requests; their completions land in
  // completions_ and are simply never delivered.
  workers_->Wait();
  workers_.reset();
  for (auto& [id, conn] : connections_) ::close(conn->fd);
  connections_.clear();
  ::close(listen_fd_);
  ::close(epoll_fd_);
  ::close(wake_fd_);
  listen_fd_ = epoll_fd_ = wake_fd_ = -1;
}

ServerStats Server::stats() const {
  ServerStats stats;
  stats.view.accepted_connections = accepted_.value();
  stats.view.active_connections = active_.load(std::memory_order_relaxed);
  stats.view.requests = requests_.value();
  stats.view.shed_requests = shed_.value();
  stats.view.errors = errors_.value();
  stats.view.cache_hits = cache_.hits();
  stats.view.cache_misses = cache_.misses();
  stats.view.cache_evictions = cache_.evictions();
  stats.view.max_queue_depth = gate_.high_water();
  stats.view.request_us = request_us_.Snapshot();
  stats.cache_bytes = cache_.bytes();
  stats.active_connections = stats.view.active_connections;
  return stats;
}

void Server::LoopThread() {
  epoll_event events[64];
  while (!stopping_.load(std::memory_order_acquire)) {
    const int n = ::epoll_wait(epoll_fd_, events, 64, /*timeout_ms=*/100);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    for (int i = 0; i < n; ++i) {
      const uint64_t id = events[i].data.u64;
      if (id == kListenId) {
        AcceptReady();
        continue;
      }
      if (id == kWakeId) {
        uint64_t drain = 0;
        [[maybe_unused]] ssize_t r = ::read(wake_fd_, &drain, sizeof(drain));
        DrainCompletions();
        continue;
      }
      auto it = connections_.find(id);
      if (it == connections_.end()) continue;  // closed this batch
      Connection& conn = *it->second;
      bool alive = true;
      if ((events[i].events & (EPOLLHUP | EPOLLERR)) != 0) {
        alive = false;
      } else {
        if ((events[i].events & EPOLLIN) != 0) alive = ReadReady(conn);
        if (alive && (events[i].events & EPOLLOUT) != 0) {
          alive = WriteReady(conn);
        }
      }
      if (!alive) CloseConnection(id);
    }
    // Completions can also arrive between epoll wakeups (the eventfd is
    // edge-agnostic but cheap to over-check).
    DrainCompletions();
  }
}

void Server::AcceptReady() {
  for (;;) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) return;  // EAGAIN or transient error: wait for epoll
    if (connections_.size() >= options_.max_clients) {
      // Connection-cap shed: one typed error frame, then close. The
      // frame is binary regardless of the mode the client intended —
      // it never got to send its first byte.
      shed_.Increment();
      Response response = ErrorResponse(
          0, WireError::kOverloaded,
          "connection cap (max_clients=" +
              std::to_string(options_.max_clients) + ") reached",
          /*retry_after_ms=*/50);
      std::string bytes;
      EncodeResponse(response, bytes);
      [[maybe_unused]] ssize_t n = ::write(fd, bytes.data(), bytes.size());
      ::close(fd);
      continue;
    }
    const uint64_t id = next_conn_id_++;
    auto conn = std::make_unique<Connection>(
        id, fd, options_.limits.max_input_bytes, options_.per_client_qps,
        options_.per_client_burst);
    epoll_event event{};
    event.events = EPOLLIN;
    event.data.u64 = id;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &event);
    connections_.emplace(id, std::move(conn));
    accepted_.Increment();
    active_.fetch_add(1, std::memory_order_relaxed);
  }
}

bool Server::ReadReady(Connection& conn) {
  char buffer[64 * 1024];
  for (;;) {
    const ssize_t n = ::read(conn.fd, buffer, sizeof(buffer));
    if (n == 0) return false;  // peer closed
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      return false;
    }
    std::string_view bytes(buffer, static_cast<size_t>(n));
    if (!conn.mode_known) {
      conn.mode_known = true;
      conn.json_mode = bytes.front() == '{';
    }
    if (conn.json_mode) {
      conn.json_buffer.append(bytes);
      if (conn.json_buffer.size() > options_.limits.max_input_bytes) {
        Response response = ErrorResponse(
            0, WireError::kBadFrame, "debug request line exceeds frame cap");
        QueueOutput(conn, ResponseToJsonLine(response) + "\n");
        conn.closing = true;
        break;
      }
      size_t start = 0;
      for (size_t nl = conn.json_buffer.find('\n', start);
           nl != std::string::npos;
           nl = conn.json_buffer.find('\n', start)) {
        const std::string_view line(conn.json_buffer.data() + start,
                                    nl - start);
        start = nl + 1;
        if (line.empty()) continue;
        Request request;
        const Status status = ParseJsonRequest(line, request);
        if (!status.ok()) {
          Response response = ErrorResponse(0, WireError::kBadFrame,
                                            status.message());
          QueueOutput(conn, ResponseToJsonLine(response) + "\n");
          conn.closing = true;
          break;
        }
        HandleRequest(conn, std::move(request));
      }
      conn.json_buffer.erase(0, start);
      if (conn.closing) break;
    } else {
      conn.decoder.Append(bytes);
      for (;;) {
        Request request;
        const FrameStatus status = conn.decoder.NextRequest(request);
        if (status == FrameStatus::kNeedMore) break;
        if (status == FrameStatus::kBad) {
          // Framing is unrecoverable: answer with the typed error and
          // close once it drains (docs/SERVING.md, error taxonomy).
          Response response = ErrorResponse(0, WireError::kBadFrame,
                                            conn.decoder.error());
          std::string encoded;
          EncodeResponse(response, encoded);
          QueueOutput(conn, encoded);
          conn.closing = true;
          break;
        }
        HandleRequest(conn, std::move(request));
      }
      if (conn.closing) break;
    }
  }
  return !(conn.closing && conn.out_pos == conn.out.size());
}

bool Server::WriteReady(Connection& conn) {
  while (conn.out_pos < conn.out.size()) {
    const ssize_t n = ::write(conn.fd, conn.out.data() + conn.out_pos,
                              conn.out.size() - conn.out_pos);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
      if (errno == EINTR) continue;
      return false;
    }
    conn.out_pos += static_cast<size_t>(n);
  }
  conn.out.clear();
  conn.out_pos = 0;
  if (conn.want_write) {
    conn.want_write = false;
    UpdateEpoll(conn);
  }
  return !conn.closing;
}

void Server::HandleRequest(Connection& conn, Request request) {
  requests_.Increment();
  Admission admission = conn.bucket.Admit(obs::MonotonicSeconds());
  if (admission.admitted) admission = gate_.TryAcquire();
  if (!admission.admitted) {
    shed_.Increment();
    Response response = ErrorResponse(
        request.id, WireError::kOverloaded,
        std::string("shed by ") + admission.reason + " admission control",
        admission.retry_after_ms);
    if (conn.json_mode) {
      QueueOutput(conn, ResponseToJsonLine(response) + "\n");
    } else {
      std::string encoded;
      EncodeResponse(response, encoded);
      QueueOutput(conn, encoded);
    }
    return;
  }
  // Admitted: workers own the request from here; the gate slot is
  // released by RunRequest.
  const uint64_t conn_id = conn.id;
  const bool json_mode = conn.json_mode;
  workers_->Submit([this, conn_id, json_mode,
                    request = std::move(request)]() mutable {
    RunRequest(conn_id, json_mode, std::move(request));
  });
}

void Server::RunRequest(uint64_t conn_id, bool json_mode, Request request) {
  const double begin_s = obs::MonotonicSeconds();
  std::string bytes;
  Response response;
  bool encoded = false;
  // The library is exception-free, but the runtime is not (bad_alloc
  // above all) and the before_execute test seam may throw: a worker
  // failure becomes a kInternal response instead of a silent drop —
  // the same message ThreadPool would have recorded.
  try {
    if (options_.before_execute) options_.before_execute(request);
    if (!json_mode && request.type == MsgType::kQuery) {
      // Binary fast path: the cached encoded BODY is reused verbatim;
      // only the 12-byte header is stamped per request.
      StatusOr<std::string> body = QueryBody(request.body);
      if (body.ok()) {
        EncodeResponseHeader(MsgType::kQuery, request.id, body.value().size(),
                             bytes);
        bytes += body.value();
        encoded = true;
      } else {
        response = ErrorResponse(request.id, StatusToWireError(body.status()),
                                 body.status().message());
      }
    } else {
      response = Execute(request);
    }
  } catch (const std::exception& e) {
    response = ErrorResponse(request.id, WireError::kInternal,
                             std::string("worker task failed: ") + e.what());
    encoded = false;
    bytes.clear();
  } catch (...) {
    response = ErrorResponse(request.id, WireError::kInternal,
                             "worker task failed: unknown exception");
    encoded = false;
    bytes.clear();
  }
  gate_.Release();
  if (!encoded) {
    if (!response.ok()) errors_.Increment();
    if (json_mode) {
      bytes = ResponseToJsonLine(response) + "\n";
    } else {
      EncodeResponse(response, bytes);
    }
  }
  request_us_.Record(
      static_cast<uint64_t>((obs::MonotonicSeconds() - begin_s) * 1e6));
  PushCompletion(conn_id, std::move(bytes));
}

void Server::PushCompletion(uint64_t conn_id, std::string bytes) {
  {
    std::lock_guard<std::mutex> lock(completions_mutex_);
    completions_.push_back(Completion{conn_id, std::move(bytes)});
  }
  const uint64_t one = 1;
  [[maybe_unused]] ssize_t n = ::write(wake_fd_, &one, sizeof(one));
}

void Server::DrainCompletions() {
  std::vector<Completion> batch;
  {
    std::lock_guard<std::mutex> lock(completions_mutex_);
    batch.swap(completions_);
  }
  for (Completion& completion : batch) {
    auto it = connections_.find(completion.conn_id);
    if (it == connections_.end()) continue;  // connection closed mid-flight
    QueueOutput(*it->second, completion.bytes);
    if (it->second->closing && it->second->out_pos == it->second->out.size()) {
      CloseConnection(completion.conn_id);
    }
  }
}

void Server::QueueOutput(Connection& conn, std::string_view bytes) {
  conn.out.append(bytes);
  if (conn.want_write) return;  // epoll will flush
  while (conn.out_pos < conn.out.size()) {
    const ssize_t n = ::write(conn.fd, conn.out.data() + conn.out_pos,
                              conn.out.size() - conn.out_pos);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        conn.want_write = true;
        UpdateEpoll(conn);
      }
      // Hard write errors surface on the next epoll round as EPOLLERR.
      return;
    }
    conn.out_pos += static_cast<size_t>(n);
  }
  conn.out.clear();
  conn.out_pos = 0;
}

void Server::CloseConnection(uint64_t conn_id) {
  auto it = connections_.find(conn_id);
  if (it == connections_.end()) return;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, it->second->fd, nullptr);
  ::close(it->second->fd);
  connections_.erase(it);
  active_.fetch_sub(1, std::memory_order_relaxed);
}

void Server::UpdateEpoll(Connection& conn) {
  epoll_event event{};
  event.events = EPOLLIN | (conn.want_write ? EPOLLOUT : 0u);
  event.data.u64 = conn.id;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn.fd, &event);
}

StatusOr<std::string> Server::QueryBody(const std::string& query_text) {
  return CachedQueryBody(*context_.repo, cache_, query_text,
                         options_.max_results);
}

Response Server::ErrorResponse(uint32_t id, WireError error,
                               std::string message,
                               uint32_t retry_after_ms) const {
  Response response;
  response.type = MsgType::kError;
  response.id = id;
  response.error = error;
  response.message = std::move(message);
  response.retry_after_ms = retry_after_ms;
  return response;
}

Response Server::Execute(const Request& request) {
  Response response;
  response.id = request.id;
  response.type = request.type;
  switch (request.type) {
    case MsgType::kPing:
      break;
    case MsgType::kIngest: {
      if (context_.converter == nullptr) {
        return ErrorResponse(request.id, WireError::kFailedPrecondition,
                             "server has no document converter");
      }
      StatusOr<std::unique_ptr<Node>> tree =
          context_.converter->TryConvert(request.body);
      if (!tree.ok()) {
        return ErrorResponse(request.id, StatusToWireError(tree.status()),
                             tree.status().message());
      }
      StatusOr<DocId> id =
          context_.durable != nullptr
              ? context_.durable->Add(std::move(tree.value()))
              : context_.repo->Add(std::move(tree.value()));
      if (!id.ok()) {
        return ErrorResponse(request.id, StatusToWireError(id.status()),
                             id.status().message());
      }
      response.doc_id = id.value();
      break;
    }
    case MsgType::kQuery: {
      StatusOr<std::string> body = QueryBody(request.body);
      if (!body.ok()) {
        return ErrorResponse(request.id, StatusToWireError(body.status()),
                             body.status().message());
      }
      if (!DecodeResponseBody(body.value(), response)) {
        return ErrorResponse(request.id, WireError::kInternal,
                             "self-encoded query body failed to decode");
      }
      break;
    }
    case MsgType::kSchema: {
      const MajoritySchema schema = context_.repo->DiscoverSchema();
      response.schema_text = schema.ToString();
      response.dtd_text = BuildDtd(schema).ToString(/*attlist=*/false);
      break;
    }
    case MsgType::kStats: {
      const ServerStats server = stats();
      const RepositoryStats repo = context_.repo->Stats();
      std::string json = "{\"serve\":{";
      AppendJsonKv(json, "accepted_connections",
                   server.view.accepted_connections);
      AppendJsonKv(json, "active_connections", server.view.active_connections);
      AppendJsonKv(json, "requests", server.view.requests);
      AppendJsonKv(json, "shed_requests", server.view.shed_requests);
      AppendJsonKv(json, "errors", server.view.errors);
      AppendJsonKv(json, "cache_hits", server.view.cache_hits);
      AppendJsonKv(json, "cache_misses", server.view.cache_misses);
      AppendJsonKv(json, "cache_evictions", server.view.cache_evictions);
      AppendJsonKv(json, "cache_bytes", server.cache_bytes);
      AppendJsonKv(json, "max_queue_depth", server.view.max_queue_depth,
                   /*comma=*/false);
      json += "},\"repository\":{";
      AppendJsonKv(json, "documents", repo.documents);
      AppendJsonKv(json, "elements", repo.elements);
      AppendJsonKv(json, "distinct_paths", repo.distinct_paths);
      AppendJsonKv(json, "flat_bytes", repo.flat_bytes, /*comma=*/false);
      json += "}";
      if (context_.durable != nullptr) {
        const obs::StorageStatsView storage = context_.durable->stats();
        json += ",\"storage\":{";
        AppendJsonKv(json, "wal_appends", storage.wal_appends);
        AppendJsonKv(json, "wal_replayed", storage.wal_replayed);
        AppendJsonKv(json, "snapshot_bytes", storage.snapshot_bytes,
                     /*comma=*/false);
        json += "}";
      }
      json += "}";
      response.stats_json = std::move(json);
      break;
    }
    case MsgType::kCheckpoint: {
      if (context_.durable == nullptr) {
        return ErrorResponse(request.id, WireError::kFailedPrecondition,
                             "checkpoint requires a durable repository "
                             "(start the server with --data-dir)");
      }
      const Status status = context_.durable->Checkpoint();
      if (!status.ok()) {
        return ErrorResponse(request.id, StatusToWireError(status),
                             status.message());
      }
      break;
    }
    case MsgType::kError:
      return ErrorResponse(request.id, WireError::kBadFrame,
                           "kError is response-only");
  }
  return response;
}

}  // namespace serve
}  // namespace webre
