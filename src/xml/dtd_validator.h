#ifndef WEBRE_XML_DTD_VALIDATOR_H_
#define WEBRE_XML_DTD_VALIDATOR_H_

#include <string>
#include <vector>

#include "xml/dtd.h"
#include "xml/node.h"

namespace webre {

/// One validation problem found by ValidateAgainstDtd.
struct DtdViolation {
  /// Element name at which the violation occurred.
  std::string element;
  /// Human-readable description.
  std::string message;
};

/// Result of validating one document against a DTD.
struct DtdValidationResult {
  std::vector<DtdViolation> violations;

  bool valid() const { return violations.empty(); }
};

/// Validates the element tree rooted at `root` against `dtd`.
///
/// Checks performed:
///  - the root element name matches `dtd.root()` (when non-empty);
///  - every element is declared;
///  - each element's sequence of child *elements* matches its content
///    model (text children are permitted everywhere, mirroring the
///    paper's convention that every element carries character data via
///    `val` / #PCDATA).
///
/// Validation continues past violations so the result lists all problems.
DtdValidationResult ValidateAgainstDtd(const Node& root, const Dtd& dtd);

/// Convenience: true iff the document conforms.
bool ConformsToDtd(const Node& root, const Dtd& dtd);

}  // namespace webre

#endif  // WEBRE_XML_DTD_VALIDATOR_H_
