#include "xml/name_table.h"

#include <stdexcept>

namespace webre {
namespace {

// The seeded vocabulary: every name the conversion hot path interns on
// a typical document, so steady-state interning never touches the
// dynamic map's mutex.
//
// Order defines the seeded ids and is frozen: appending is fine,
// reordering silently changes seeded ids (harmless for correctness —
// nothing may depend on id order — but keep it stable anyway so runs of
// different binaries agree in debugging sessions).
constexpr std::string_view kSeedNames[] = {
    // Synthetic pipeline names.
    "#root", "#comment", "TOKEN", "GROUP",
    // Default document root names.
    "resume", "catalog", "html",
    // HTML 4-era tag vocabulary (tag_tables.cc classifies these).
    "head", "body", "title", "div", "p", "h1", "h2", "h3", "h4", "h5",
    "h6", "ul", "ol", "dl", "li", "dt", "dd", "dir", "menu", "table",
    "tr", "td", "th", "thead", "tbody", "tfoot", "caption", "blockquote",
    "pre", "center", "form", "address", "hr", "fieldset", "frame",
    "frameset", "br", "img", "input", "meta", "link", "area", "base",
    "col", "param", "isindex", "basefont", "b", "i", "u", "em", "strong",
    "font", "span", "a", "tt", "code", "small", "big", "sub", "sup", "s",
    "strike", "abbr", "acronym", "cite", "q", "samp", "kbd", "var",
    "dfn", "ins", "del", "label", "script", "style", "select", "option",
    "optgroup", "textarea", "iframe", "object", "applet", "map",
    "noscript", "noframes",
    // Bundled resume-domain concept names (concepts/resume_domain.cc).
    "CONTACT", "OBJECTIVE", "EDUCATION", "EXPERIENCE", "SKILLS", "AWARDS",
    "ACTIVITIES", "REFERENCE", "COURSES", "PUBLICATIONS", "SUMMARY",
    "INSTITUTION", "DEGREE", "DATE", "GPA", "MAJOR", "COMPANY",
    "JOBTITLE", "LOCATION", "EMAIL", "PHONE", "NAME", "COURSE",
    "LANGUAGE",
    // Bundled catalog-domain concept names (corpus/catalog_generator.cc).
    "CATEGORY", "BRAND", "PRICE", "RATING", "WARRANTY",
};

}  // namespace

NameTable& NameTable::Global() {
  // Leaked singleton: interned views must stay valid for the process
  // lifetime, including during static destruction of late finalizers.
  static NameTable& table = *new NameTable();
  return table;
}

NameTable::NameTable() {
  seeded_.reserve(std::size(kSeedNames) * 2);
  for (std::string_view name : kSeedNames) {
    // Duplicate seeds would silently shift ids; Append dedups via the
    // seeded map built so far.
    if (seeded_.find(name) != seeded_.end()) continue;
    NameId id = Append(name);
    seeded_.emplace(NameOf(id), id);
  }
  seed_count_ = count_.load(std::memory_order_relaxed);
}

NameId NameTable::Intern(std::string_view name) {
  auto it = seeded_.find(name);
  if (it != seeded_.end()) return it->second;
  return InternDynamic(name);
}

NameId NameTable::InternLowercase(std::string_view name) {
  char buf[64];
  if (name.size() <= sizeof(buf)) {
    bool changed = false;
    for (size_t i = 0; i < name.size(); ++i) {
      char c = name[i];
      if (c >= 'A' && c <= 'Z') {
        c = static_cast<char>(c - 'A' + 'a');
        changed = true;
      }
      buf[i] = c;
    }
    return Intern(changed ? std::string_view(buf, name.size()) : name);
  }
  std::string lowered(name);
  for (char& c : lowered) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  }
  return Intern(lowered);
}

NameId NameTable::Find(std::string_view name) const {
  auto it = seeded_.find(name);
  if (it != seeded_.end()) return it->second;
  std::lock_guard<std::mutex> lock(mutex_);
  auto dyn = dynamic_.find(name);
  return dyn != dynamic_.end() ? dyn->second : kInvalidNameId;
}

NameId NameTable::InternDynamic(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = dynamic_.find(name);
  if (it != dynamic_.end()) return it->second;
  NameId id = Append(name);
  dynamic_.emplace(NameOf(id), id);
  return id;
}

NameId NameTable::Append(std::string_view name) {
  size_t count = count_.load(std::memory_order_relaxed);
  if (count >= kMaxNames) {
    throw std::length_error(
        "NameTable: interned-name capacity exceeded (" +
        std::to_string(kMaxNames) + " distinct element names)");
  }
  char* data = static_cast<char*>(storage_.Allocate(name.size(), 1));
  if (!name.empty()) name.copy(data, name.size());

  size_t chunk_index = count >> kChunkShift;
  Entry* chunk = chunks_[chunk_index].load(std::memory_order_relaxed);
  if (chunk == nullptr) {
    chunk = static_cast<Entry*>(
        storage_.Allocate(sizeof(Entry) * kChunkSize, alignof(Entry)));
    chunks_[chunk_index].store(chunk, std::memory_order_release);
  }
  chunk[count & (kChunkSize - 1)] =
      Entry{data, static_cast<uint32_t>(name.size())};
  // Publish after the entry is fully written: a reader holding id
  // `count` can only have obtained it after this store.
  count_.store(count + 1, std::memory_order_release);
  return static_cast<NameId>(count);
}

}  // namespace webre
