#include "xml/reader.h"

#include <string>
#include <vector>

#include "util/strings.h"

namespace webre {
namespace {

// Appends the UTF-8 encoding of `cp` to `out`.
void AppendUtf8(uint32_t cp, std::string& out) {
  if (cp < 0x80) {
    out.push_back(static_cast<char>(cp));
  } else if (cp < 0x800) {
    out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
    out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  } else if (cp < 0x10000) {
    out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
    out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
    out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  } else {
    out.push_back(static_cast<char>(0xF0 | (cp >> 18)));
    out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
    out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
    out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  }
}

// Increments a recursion-depth counter for the current scope.
struct DepthGuard {
  explicit DepthGuard(size_t& depth) : depth(depth) { ++depth; }
  ~DepthGuard() { --depth; }
  size_t& depth;
};

class Parser {
 public:
  Parser(std::string_view input, const XmlReadOptions& options)
      : input_(input), options_(options), budget_(options.limits) {}

  StatusOr<std::unique_ptr<Node>> Parse() {
    WEBRE_RETURN_IF_ERROR(budget_.ChargeInput(input_.size()));
    WEBRE_RETURN_IF_ERROR(budget_.ChargeSteps(input_.size()));
    SkipProlog();
    if (AtEnd() || Peek() != '<') {
      return Error("expected root element");
    }
    StatusOr<std::unique_ptr<Node>> root = ParseElement();
    if (!root.ok()) return root.status();
    SkipMisc();
    if (!AtEnd()) return Error("trailing content after root element");
    return root;
  }

 private:
  bool AtEnd() const { return pos_ >= input_.size(); }
  char Peek() const { return input_[pos_]; }
  char PeekAt(size_t offset) const {
    return pos_ + offset < input_.size() ? input_[pos_ + offset] : '\0';
  }

  void Advance() {
    if (input_[pos_] == '\n') ++line_;
    ++pos_;
  }

  bool Consume(std::string_view literal) {
    if (input_.substr(pos_).substr(0, literal.size()) != literal) return false;
    for (size_t i = 0; i < literal.size(); ++i) Advance();
    return true;
  }

  void SkipWhitespace() {
    while (!AtEnd() && IsAsciiSpace(Peek())) Advance();
  }

  Status Error(std::string message) const {
    return Status::InvalidArgument("XML parse error at line " +
                                   std::to_string(line_) + ": " +
                                   std::move(message));
  }

  // Skips the XML declaration, DOCTYPE, comments, PIs and whitespace
  // before the root element.
  void SkipProlog() {
    while (true) {
      SkipWhitespace();
      if (Consume("<?")) {
        while (!AtEnd() && !Consume("?>")) Advance();
      } else if (Consume("<!--")) {
        while (!AtEnd() && !Consume("-->")) Advance();
      } else if (Consume("<!DOCTYPE") || Consume("<!doctype")) {
        // Skip to the matching '>' (internal subsets use nested brackets).
        int bracket_depth = 0;
        while (!AtEnd()) {
          char c = Peek();
          Advance();
          if (c == '[') ++bracket_depth;
          if (c == ']') --bracket_depth;
          if (c == '>' && bracket_depth <= 0) break;
        }
      } else {
        return;
      }
    }
  }

  // Skips comments/PIs/whitespace after the root element.
  void SkipMisc() {
    while (true) {
      SkipWhitespace();
      if (Consume("<!--")) {
        while (!AtEnd() && !Consume("-->")) Advance();
      } else if (Consume("<?")) {
        while (!AtEnd() && !Consume("?>")) Advance();
      } else {
        return;
      }
    }
  }

  bool IsNameStart(char c) const {
    return IsAsciiAlpha(c) || c == '_' || c == ':';
  }
  bool IsNameChar(char c) const {
    return IsAsciiAlnum(c) || c == '_' || c == ':' || c == '-' || c == '.';
  }

  StatusOr<std::string> ParseName() {
    if (AtEnd() || !IsNameStart(Peek())) return Error("expected name");
    std::string name;
    while (!AtEnd() && IsNameChar(Peek())) {
      name.push_back(Peek());
      Advance();
    }
    return name;
  }

  // Decodes entity/character references in `raw` into plain text.
  StatusOr<std::string> DecodeReferences(std::string_view raw) {
    std::string out;
    out.reserve(raw.size());
    for (size_t i = 0; i < raw.size(); ++i) {
      if (raw[i] != '&') {
        out.push_back(raw[i]);
        continue;
      }
      WEBRE_RETURN_IF_ERROR(budget_.ChargeEntity());
      size_t semi = raw.find(';', i + 1);
      if (semi == std::string_view::npos) {
        return Error("unterminated entity reference");
      }
      std::string_view entity = raw.substr(i + 1, semi - i - 1);
      if (entity == "amp") {
        out.push_back('&');
      } else if (entity == "lt") {
        out.push_back('<');
      } else if (entity == "gt") {
        out.push_back('>');
      } else if (entity == "quot") {
        out.push_back('"');
      } else if (entity == "apos") {
        out.push_back('\'');
      } else if (!entity.empty() && entity[0] == '#') {
        // 0x110000 is a clamp sentinel: references too long to fit a
        // uint32 must read as out-of-range, not wrap back into range.
        uint32_t cp = 0;
        bool valid = entity.size() > 1;
        if (entity.size() > 2 && (entity[1] == 'x' || entity[1] == 'X')) {
          for (size_t k = 2; k < entity.size(); ++k) {
            char c = AsciiToLower(entity[k]);
            if (IsAsciiDigit(c)) {
              if (cp < 0x110000) cp = cp * 16 + static_cast<uint32_t>(c - '0');
            } else if (c >= 'a' && c <= 'f') {
              if (cp < 0x110000) {
                cp = cp * 16 + static_cast<uint32_t>(c - 'a' + 10);
              }
            } else {
              valid = false;
              break;
            }
            if (cp > 0x10FFFF) cp = 0x110000;
          }
        } else {
          for (size_t k = 1; k < entity.size(); ++k) {
            if (!IsAsciiDigit(entity[k])) {
              valid = false;
              break;
            }
            if (cp < 0x110000) {
              cp = cp * 10 + static_cast<uint32_t>(entity[k] - '0');
            }
            if (cp > 0x10FFFF) cp = 0x110000;
          }
        }
        if (!valid || cp == 0 || cp > 0x10FFFF ||
            (cp >= 0xD800 && cp <= 0xDFFF)) {
          // Surrogates are not XML Chars; emitting them would produce
          // ill-formed UTF-8 downstream.
          return Error("invalid character reference");
        }
        AppendUtf8(cp, out);
      } else {
        return Error("unknown entity reference '&" + std::string(entity) +
                     ";'");
      }
      i = semi;
    }
    return out;
  }

  StatusOr<std::unique_ptr<Node>> ParseElement() {
    // ParseElement recurses per nesting level; the depth cap keeps
    // hostile nesting from overflowing the parser's own stack.
    WEBRE_RETURN_IF_ERROR(budget_.CheckDepth(depth_));
    const DepthGuard guard(depth_);
    WEBRE_RETURN_IF_ERROR(budget_.ChargeNodes(1));
    if (!Consume("<")) return Error("expected '<'");
    StatusOr<std::string> name = ParseName();
    if (!name.ok()) return name.status();
    std::unique_ptr<Node> element = Node::MakeElement(std::move(name.value()));

    // Attributes.
    while (true) {
      SkipWhitespace();
      if (AtEnd()) return Error("unterminated start tag");
      if (Peek() == '>' || (Peek() == '/' && PeekAt(1) == '>')) break;
      StatusOr<std::string> attr_name = ParseName();
      if (!attr_name.ok()) return attr_name.status();
      SkipWhitespace();
      if (!Consume("=")) return Error("expected '=' after attribute name");
      SkipWhitespace();
      if (AtEnd() || (Peek() != '"' && Peek() != '\'')) {
        return Error("expected quoted attribute value");
      }
      const char quote = Peek();
      Advance();
      size_t start = pos_;
      while (!AtEnd() && Peek() != quote) Advance();
      if (AtEnd()) return Error("unterminated attribute value");
      StatusOr<std::string> value =
          DecodeReferences(input_.substr(start, pos_ - start));
      if (!value.ok()) return value.status();
      Advance();  // closing quote
      element->set_attr(attr_name.value(), std::move(value.value()));
    }

    if (Consume("/>")) return element;
    if (!Consume(">")) return Error("expected '>'");

    // Content.
    std::string pending_text;
    auto flush_text = [&]() -> Status {
      if (pending_text.empty()) return Status::Ok();
      std::string_view view = pending_text;
      if (options_.skip_whitespace_text &&
          StripAsciiWhitespace(view).empty()) {
        pending_text.clear();
        return Status::Ok();
      }
      StatusOr<std::string> decoded = DecodeReferences(view);
      if (!decoded.ok()) return decoded.status();
      std::string text = std::move(decoded.value());
      if (options_.trim_text) text = std::string(StripAsciiWhitespace(text));
      if (!text.empty()) {
        WEBRE_RETURN_IF_ERROR(budget_.ChargeNodes(1));
        element->AddText(std::move(text));
      }
      pending_text.clear();
      return Status::Ok();
    };

    while (true) {
      if (AtEnd()) {
        return Error("unterminated element <" +
                     std::string(element->name()) + ">");
      }
      if (Peek() == '<') {
        if (PeekAt(1) == '/') {
          WEBRE_RETURN_IF_ERROR(flush_text());
          Consume("</");
          StatusOr<std::string> end_name = ParseName();
          if (!end_name.ok()) return end_name.status();
          SkipWhitespace();
          if (!Consume(">")) return Error("expected '>' in end tag");
          if (end_name.value() != element->name()) {
            return Error("mismatched end tag </" + end_name.value() +
                         "> for <" + std::string(element->name()) + ">");
          }
          return element;
        }
        if (Consume("<!--")) {
          while (!AtEnd() && !Consume("-->")) Advance();
          continue;
        }
        if (Consume("<![CDATA[")) {
          size_t start = pos_;
          while (!AtEnd() && !(Peek() == ']' && PeekAt(1) == ']' &&
                               PeekAt(2) == '>')) {
            Advance();
          }
          if (AtEnd()) return Error("unterminated CDATA section");
          WEBRE_RETURN_IF_ERROR(flush_text());
          std::string cdata(input_.substr(start, pos_ - start));
          if (!cdata.empty()) {
            WEBRE_RETURN_IF_ERROR(budget_.ChargeNodes(1));
            element->AddText(std::move(cdata));
          }
          Consume("]]>");
          continue;
        }
        if (Consume("<?")) {
          while (!AtEnd() && !Consume("?>")) Advance();
          continue;
        }
        WEBRE_RETURN_IF_ERROR(flush_text());
        StatusOr<std::unique_ptr<Node>> child = ParseElement();
        if (!child.ok()) return child.status();
        element->AddChild(std::move(child.value()));
        continue;
      }
      pending_text.push_back(Peek());
      Advance();
    }
  }

  std::string_view input_;
  XmlReadOptions options_;
  ResourceBudget budget_;
  size_t pos_ = 0;
  size_t line_ = 1;
  size_t depth_ = 0;
};

}  // namespace

StatusOr<std::unique_ptr<Node>> ParseXml(std::string_view input,
                                         const XmlReadOptions& options) {
  Parser parser(input, options);
  return parser.Parse();
}

}  // namespace webre
