#include "xml/writer.h"

namespace webre {

std::string EscapeXmlText(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '&':
        out.append("&amp;");
        break;
      case '<':
        out.append("&lt;");
        break;
      case '>':
        out.append("&gt;");
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

std::string EscapeXmlAttr(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '&':
        out.append("&amp;");
        break;
      case '<':
        out.append("&lt;");
        break;
      case '>':
        out.append("&gt;");
        break;
      case '"':
        out.append("&quot;");
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

namespace {

void WriteNode(const Node& node, const XmlWriteOptions& options, int depth,
               std::string& out) {
  const bool pretty = options.indent > 0;
  auto indent = [&](int d) {
    if (pretty) out.append(static_cast<size_t>(d * options.indent), ' ');
  };

  if (node.is_text()) {
    indent(depth);
    out.append(EscapeXmlText(node.text()));
    if (pretty) out.push_back('\n');
    return;
  }

  indent(depth);
  out.push_back('<');
  out.append(node.name());
  for (const Attribute& a : node.attributes()) {
    out.push_back(' ');
    out.append(a.name);
    out.append("=\"");
    out.append(EscapeXmlAttr(a.value));
    out.push_back('"');
  }
  if (node.child_count() == 0 && options.self_close_empty) {
    out.append("/>");
    if (pretty) out.push_back('\n');
    return;
  }
  out.push_back('>');
  if (pretty) out.push_back('\n');
  for (size_t i = 0; i < node.child_count(); ++i) {
    WriteNode(*node.child(i), options, depth + 1, out);
  }
  indent(depth);
  out.append("</");
  out.append(node.name());
  out.push_back('>');
  if (pretty) out.push_back('\n');
}

}  // namespace

std::string WriteXml(const Node& node, const XmlWriteOptions& options) {
  std::string out;
  if (options.declaration) {
    out.append("<?xml version=\"1.0\" encoding=\"UTF-8\"?>");
    if (options.indent > 0) out.push_back('\n');
  }
  WriteNode(node, options, 0, out);
  return out;
}

}  // namespace webre
