#ifndef WEBRE_XML_FLAT_DOC_H_
#define WEBRE_XML_FLAT_DOC_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string_view>

#include "util/simd_scan.h"
#include "util/status.h"
#include "xml/name_table.h"
#include "xml/node.h"

namespace webre {

/// Read-only structure-of-arrays form of one element tree, frozen at
/// repository admission (XmlRepository::Add) so the mutable pointer
/// tree — and its NodeArena — can be released while serving continues
/// from one tightly-sized contiguous block per document.
///
/// Layout (one allocation, arrays parallel over the document's elements
/// in pre-order; text nodes are not represented — queries address only
/// elements and their `val` attribute):
///
///   name[i]         interned NameId of element i
///   parent[i]       pre-order index of i's parent (kNoParent for root)
///   depth[i]        0 for the root, parent depth + 1 otherwise
///   subtree_end[i]  one past the last pre-order index in i's subtree,
///                   so i's descendants are exactly [i+1, subtree_end[i])
///   text_off[i]     byte offset of element i's val in the text pools
///                   (element_count + 1 entries; slices are adjacent)
///   text            concatenated raw val bytes
///   lower           the same bytes ASCII-lowered once at freeze time,
///                   so a [val~"…"] predicate is a linear substring scan
///                   over dense bytes — no per-node lowering, no
///                   attribute-list walk
///
/// Traversal idioms (all index arithmetic, no pointers):
///   children of e:     for (f = e + 1; f < subtree_end(e); f = subtree_end(f))
///   descendants of e:  every index in [e + 1, subtree_end(e))
///
/// A FlatDoc is immutable after Freeze and safe to read from any number
/// of threads once published (the repository publishes it under its
/// locks; readers then need no lock at all).
class FlatDoc {
 public:
  /// Parent marker of the root element.
  static constexpr uint32_t kNoParent = 0xFFFFFFFFu;

  /// Builds the flat form of `root`'s element tree. `root` must be an
  /// element; the walk is iterative, so pathological depth cannot
  /// overflow the C++ stack. The source tree is untouched (and no
  /// longer needed afterwards).
  static std::unique_ptr<FlatDoc> Freeze(const Node& root);

  /// Reconstructs a FlatDoc from the exact bytes block_data() exposes
  /// (the storage layer's WAL records and snapshot DOCS section carry
  /// them verbatim). The block is structurally validated — parent links
  /// acyclic and in-range, subtree ranges nested, text offsets
  /// monotonic, every NameId below `name_limit` — so a corrupted or
  /// hostile block yields InvalidArgument, never out-of-range reads
  /// later. Takes ownership of `block` (which must hold `block_bytes`).
  static StatusOr<std::unique_ptr<FlatDoc>> FromOwnedBlock(
      std::unique_ptr<char[]> block, size_t block_bytes,
      uint32_t element_count, NameId name_limit);

  /// Same validation over externally-owned bytes (an mmap-ed snapshot):
  /// the FlatDoc becomes a non-owning *view* — zero copy, near-zero
  /// warmup — and `data` must stay mapped and unchanged for the
  /// FlatDoc's lifetime. `data` must be 4-byte aligned (the snapshot
  /// format 8-aligns blocks; misalignment is rejected, callers then
  /// fall back to a copying load).
  static StatusOr<std::unique_ptr<FlatDoc>> FromMappedBlock(
      const char* data, size_t block_bytes, uint32_t element_count,
      NameId name_limit);

  FlatDoc(const FlatDoc&) = delete;
  FlatDoc& operator=(const FlatDoc&) = delete;

  /// Elements in the document (pre-order indices are [0, element_count)).
  uint32_t element_count() const { return count_; }

  NameId name(uint32_t i) const { return names_[i]; }
  /// The element's name string (views the process-wide NameTable).
  std::string_view name_view(uint32_t i) const {
    return NameTable::Global().NameOf(names_[i]);
  }
  uint32_t parent(uint32_t i) const { return parents_[i]; }
  uint32_t depth(uint32_t i) const { return depths_[i]; }
  /// One past the last pre-order index of i's subtree (i's descendants
  /// are [i + 1, subtree_end(i)); i's next sibling starts there).
  uint32_t subtree_end(uint32_t i) const { return subtree_end_[i]; }

  /// Element i's `val` attribute (empty if it had none). Views the
  /// frozen text pool: stable for the FlatDoc's lifetime.
  std::string_view val(uint32_t i) const {
    return std::string_view(text_ + text_off_[i],
                            text_off_[i + 1] - text_off_[i]);
  }
  /// The same bytes, ASCII-lowered at freeze time.
  std::string_view val_lowered(uint32_t i) const {
    return std::string_view(lower_ + text_off_[i],
                            text_off_[i + 1] - text_off_[i]);
  }
  /// True iff element i's val contains `lowered` (which must already be
  /// ASCII-lowered; an empty needle matches everything). This is the
  /// per-element predicate fast path: the runtime-dispatched SIMD
  /// scanner over the pre-lowered slice (re-lowering lowered bytes is
  /// the identity, so the shared kernel needs no pre-lowered variant).
  bool ValContainsLowered(uint32_t i, std::string_view lowered) const {
    return FindLowered(val_lowered(i), lowered) != std::string_view::npos;
  }

  /// The entire pre-lowered text pool — element i's val occupies bytes
  /// [text_offsets()[i], text_offsets()[i+1]), and slices are adjacent
  /// with no separators. The repository's predicate engine scans this
  /// whole pool in one SIMD pass and maps hits back to elements through
  /// text_offsets() (repository/predicate.h); a hit straddling two
  /// adjacent slices is rejected there, never here.
  std::string_view lowered_pool() const {
    return std::string_view(lower_, text_off_[count_]);
  }
  /// The text-offset array backing val()/val_lowered():
  /// element_count() + 1 ascending entries, text_off[0] == 0 and
  /// text_off[element_count()] == pool size.
  const uint32_t* text_offsets() const { return text_off_; }

  /// Bytes of the single backing block (the document's entire
  /// steady-state footprint; exported as mem.flat_bytes).
  size_t block_bytes() const { return block_bytes_; }

  /// The backing block's raw bytes ([block_data, block_data +
  /// block_bytes)); with element_count they are sufficient to rebuild
  /// the document via FromOwnedBlock — the storage serialization
  /// surface. Layout: names, parents, depths, subtree_end (count u32s
  /// each), text_off (count+1 u32s), raw text pool, lowered text pool.
  const char* block_data() const {
    return reinterpret_cast<const char*>(names_);
  }

  /// True when this FlatDoc views externally-owned bytes (a mapped
  /// snapshot) instead of owning its block.
  bool is_view() const { return block_ == nullptr; }

 private:
  FlatDoc() = default;

  /// Wires the array pointers into `base` (owned or mapped) and
  /// validates every structural invariant. Returns InvalidArgument on
  /// the first violation.
  Status InitFromBlock(const char* base, size_t block_bytes,
                       uint32_t element_count, NameId name_limit);

  uint32_t count_ = 0;
  size_t block_bytes_ = 0;
  std::unique_ptr<char[]> block_;
  const NameId* names_ = nullptr;
  const uint32_t* parents_ = nullptr;
  const uint32_t* depths_ = nullptr;
  const uint32_t* subtree_end_ = nullptr;
  const uint32_t* text_off_ = nullptr;
  const char* text_ = nullptr;
  const char* lower_ = nullptr;
};

}  // namespace webre

#endif  // WEBRE_XML_FLAT_DOC_H_
