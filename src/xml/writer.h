#ifndef WEBRE_XML_WRITER_H_
#define WEBRE_XML_WRITER_H_

#include <string>
#include <string_view>

#include "xml/node.h"

namespace webre {

/// Serialization options for WriteXml.
struct XmlWriteOptions {
  /// Pretty-print with this many spaces per nesting level; 0 writes the
  /// document on one line with no inter-element whitespace.
  int indent = 2;
  /// Emit the `<?xml version="1.0"?>` declaration.
  bool declaration = false;
  /// Collapse `<e></e>` to `<e/>`.
  bool self_close_empty = true;
};

/// Escapes `s` for use as XML character data (&, <, >).
std::string EscapeXmlText(std::string_view s);

/// Escapes `s` for use inside a double-quoted attribute value
/// (&, <, >, ").
std::string EscapeXmlAttr(std::string_view s);

/// Serializes the tree rooted at `node` as XML text.
std::string WriteXml(const Node& node, const XmlWriteOptions& options = {});

}  // namespace webre

#endif  // WEBRE_XML_WRITER_H_
