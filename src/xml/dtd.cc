#include "xml/dtd.h"

namespace webre {

std::string_view OccurrenceSuffix(Occurrence occ) {
  switch (occ) {
    case Occurrence::kOne:
      return "";
    case Occurrence::kOptional:
      return "?";
    case Occurrence::kStar:
      return "*";
    case Occurrence::kPlus:
      return "+";
  }
  return "";
}

ContentParticle ContentParticle::Element(std::string name, Occurrence occ) {
  ContentParticle p;
  p.kind = Kind::kElement;
  p.occurrence = occ;
  p.name = std::move(name);
  return p;
}

ContentParticle ContentParticle::Pcdata() {
  ContentParticle p;
  p.kind = Kind::kPcdata;
  return p;
}

ContentParticle ContentParticle::Sequence(
    std::vector<ContentParticle> children, Occurrence occ) {
  ContentParticle p;
  p.kind = Kind::kSequence;
  p.occurrence = occ;
  p.children = std::move(children);
  return p;
}

ContentParticle ContentParticle::Choice(std::vector<ContentParticle> children,
                                        Occurrence occ) {
  ContentParticle p;
  p.kind = Kind::kChoice;
  p.occurrence = occ;
  p.children = std::move(children);
  return p;
}

std::string ContentParticle::ToString() const {
  std::string out;
  switch (kind) {
    case Kind::kElement:
      out = name;
      break;
    case Kind::kPcdata:
      out = "(#PCDATA)";
      break;
    case Kind::kSequence:
    case Kind::kChoice: {
      const char* sep = kind == Kind::kSequence ? ", " : " | ";
      out.push_back('(');
      for (size_t i = 0; i < children.size(); ++i) {
        if (i > 0) out.append(sep);
        out.append(children[i].ToString());
      }
      out.push_back(')');
      break;
    }
  }
  out.append(OccurrenceSuffix(occurrence));
  return out;
}

bool operator==(const ContentParticle& a, const ContentParticle& b) {
  return a.kind == b.kind && a.occurrence == b.occurrence &&
         a.name == b.name && a.children == b.children;
}

std::string ElementDecl::ToString() const {
  std::string out = "<!ELEMENT ";
  out.append(name);
  out.push_back(' ');
  if (pcdata_only) {
    out.append("(#PCDATA)");
  } else {
    std::string body = content.ToString();
    // Top-level content must be parenthesized in DTD syntax.
    if (body.empty() || body.front() != '(') {
      body = "(" + body + ")";
    }
    out.append(body);
  }
  out.push_back('>');
  return out;
}

void Dtd::AddElement(ElementDecl decl) {
  auto it = index_.find(decl.name);
  if (it != index_.end()) {
    elements_[it->second] = std::move(decl);
    return;
  }
  index_.emplace(decl.name, elements_.size());
  elements_.push_back(std::move(decl));
}

const ElementDecl* Dtd::Find(std::string_view name) const {
  auto it = index_.find(name);
  if (it == index_.end()) return nullptr;
  return &elements_[it->second];
}

std::string Dtd::ToString(bool include_attlist) const {
  std::string out;
  for (const ElementDecl& decl : elements_) {
    out.append(decl.ToString());
    out.push_back('\n');
    if (include_attlist) {
      out.append("<!ATTLIST ");
      out.append(decl.name);
      out.append(" val CDATA #IMPLIED>\n");
    }
  }
  return out;
}

}  // namespace webre
