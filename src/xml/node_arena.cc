#include "xml/node_arena.h"

namespace webre {
namespace {

thread_local NodeArena* tls_current_arena = nullptr;

}  // namespace

NodeArena* NodeArena::Current() { return tls_current_arena; }

NodeArenaScope::NodeArenaScope(NodeArena* arena)
    : previous_(tls_current_arena), installed_(arena != nullptr) {
  if (installed_) tls_current_arena = arena;
}

NodeArenaScope::~NodeArenaScope() {
  if (installed_) tls_current_arena = previous_;
}

}  // namespace webre
