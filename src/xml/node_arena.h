#ifndef WEBRE_XML_NODE_ARENA_H_
#define WEBRE_XML_NODE_ARENA_H_

#include <cstddef>

#include "util/arena.h"

namespace webre {

/// Per-document arena that owns the memory of every Node allocated while
/// it is installed (via NodeArenaScope). The whole tree is carved out of
/// a handful of contiguous blocks and freed in O(1) when the arena dies;
/// `delete` on an arena node runs the destructor (member strings/vectors
/// are still individually owned) but returns no memory — spliced-out
/// nodes simply stay resident until the document is done, which is the
/// arena trade: peak bytes for zero per-node free traffic.
///
/// Lifetime rule (DESIGN.md §11): the arena must outlive every Node
/// allocated from it. PipelineResult enforces this by declaring its
/// arenas before its documents.
///
/// Not thread-safe; one document (hence one thread at a time) per arena.
class NodeArena {
 public:
  NodeArena() = default;
  NodeArena(const NodeArena&) = delete;
  NodeArena& operator=(const NodeArena&) = delete;

  /// Carves one node allocation (header included) out of the arena.
  /// Called by Node::operator new; not for general use.
  void* AllocateNode(size_t size) {
    ++nodes_allocated_;
    return arena_.Allocate(size);
  }

  /// Nodes ever allocated from this arena (splices don't decrement).
  size_t nodes_allocated() const { return nodes_allocated_; }
  /// Payload bytes handed out, including node headers.
  size_t bytes_allocated() const { return arena_.bytes_allocated(); }
  /// Bytes reserved from the system allocator.
  size_t bytes_reserved() const { return arena_.bytes_reserved(); }

  /// Rewinds the arena (keeping at most one spare block — see
  /// Arena::Reset). Every Node allocated from it must already be gone.
  void Reset() {
    arena_.Reset();
    nodes_allocated_ = 0;
  }

  /// The arena installed on this thread, or null (heap allocation).
  static NodeArena* Current();

 private:
  friend class NodeArenaScope;

  Arena arena_;
  size_t nodes_allocated_ = 0;
};

/// RAII: installs `arena` as the thread's current node arena; restores
/// the previous one (normally null) on destruction. Passing null is a
/// no-op scope — callers can thread one code path through both the
/// arena and heap configurations.
class NodeArenaScope {
 public:
  explicit NodeArenaScope(NodeArena* arena);
  ~NodeArenaScope();

  NodeArenaScope(const NodeArenaScope&) = delete;
  NodeArenaScope& operator=(const NodeArenaScope&) = delete;

 private:
  NodeArena* previous_;
  bool installed_;
};

}  // namespace webre

#endif  // WEBRE_XML_NODE_ARENA_H_
