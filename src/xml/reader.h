#ifndef WEBRE_XML_READER_H_
#define WEBRE_XML_READER_H_

#include <memory>
#include <string_view>

#include "util/resource_limits.h"
#include "util/status.h"
#include "xml/node.h"

namespace webre {

/// Parse options for ParseXml.
struct XmlReadOptions {
  /// Drop text nodes that consist solely of whitespace (typical for
  /// pretty-printed documents).
  bool skip_whitespace_text = true;
  /// Trim leading/trailing whitespace of retained text nodes.
  bool trim_text = true;
  /// Resource guards: element nesting is parsed recursively, so
  /// max_tree_depth bounds the parser's own stack; max_input_bytes,
  /// max_node_count and max_entity_expansions bound memory. Exceeding
  /// any cap is a kResourceExhausted error.
  ///
  /// Deliberately enforcing by default, unlike the legacy
  /// ParseHtml/TokenizeHtml overloads (which stay unlimited): the HTML
  /// tree builder is iterative, so an unguarded call merely uses memory,
  /// but ParseXml recurses per nesting level and an unlimited default
  /// would leave a stack-overflow hole. Callers that accepted huge or
  /// deep XML before the guards existed must opt out explicitly with
  /// `limits = ResourceLimits::Unlimited()`. The defaults admit every
  /// realistic document.
  ResourceLimits limits;
};

/// Parses a well-formed XML document into a Node tree and returns its root
/// element. Supports elements, attributes (single- or double-quoted),
/// character data, CDATA sections, comments, processing instructions and
/// the XML declaration; DOCTYPE declarations are skipped. The five
/// predefined entities and decimal/hex character references are decoded.
///
/// Errors (mismatched tags, truncated input, malformed syntax) are
/// reported with a 1-based line number.
StatusOr<std::unique_ptr<Node>> ParseXml(std::string_view input,
                                         const XmlReadOptions& options = {});

}  // namespace webre

#endif  // WEBRE_XML_READER_H_
