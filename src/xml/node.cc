#include "xml/node.h"

#include <cassert>
#include <new>
#include <utility>

#include "xml/node_arena.h"

namespace webre {
namespace {

// Hidden allocation header prepended to every Node. 16 bytes keeps the
// node payload aligned for max_align_t on all supported targets.
constexpr size_t kNodeHeaderBytes = 16;
static_assert(kNodeHeaderBytes % alignof(std::max_align_t) == 0,
              "node header must preserve max alignment");

enum class AllocOrigin : uint64_t { kHeap = 0, kArena = 1 };

thread_local uint64_t tls_node_allocations = 0;

}  // namespace

void* Node::operator new(size_t size) {
  ++tls_node_allocations;
  NodeArena* arena = NodeArena::Current();
  void* raw = arena != nullptr
                  ? arena->AllocateNode(size + kNodeHeaderBytes)
                  : ::operator new(size + kNodeHeaderBytes);
  *static_cast<uint64_t*>(raw) = static_cast<uint64_t>(
      arena != nullptr ? AllocOrigin::kArena : AllocOrigin::kHeap);
  return static_cast<char*>(raw) + kNodeHeaderBytes;
}

void Node::operator delete(void* ptr) noexcept {
  if (ptr == nullptr) return;
  void* raw = static_cast<char*>(ptr) - kNodeHeaderBytes;
  // Arena nodes are freed wholesale when their arena dies; the
  // destructor has already run by the time we get here.
  if (*static_cast<uint64_t*>(raw) ==
      static_cast<uint64_t>(AllocOrigin::kHeap)) {
    ::operator delete(raw);
  }
}

void Node::operator delete(void* ptr, size_t /*size*/) noexcept {
  Node::operator delete(ptr);
}

uint64_t Node::AllocationsOnThisThread() { return tls_node_allocations; }

std::unique_ptr<Node> Node::MakeElement(NameId name) {
  auto node = std::unique_ptr<Node>(new Node(NodeType::kElement));
  node->name_id_ = name;
  return node;
}

std::unique_ptr<Node> Node::MakeElement(std::string_view name) {
  return MakeElement(NameTable::Global().Intern(name));
}

std::unique_ptr<Node> Node::MakeText(std::string text) {
  auto node = std::unique_ptr<Node>(new Node(NodeType::kText));
  node->text_ = std::move(text);
  return node;
}

Node::~Node() {
  if (children_.empty()) return;
  // Detach the whole subtree onto an explicit work-list so destruction
  // is iterative: the default member destructor would recurse once per
  // tree level and overflow the stack on pathologically deep trees.
  std::vector<std::unique_ptr<Node>> pending = std::move(children_);
  children_.clear();
  while (!pending.empty()) {
    std::unique_ptr<Node> node = std::move(pending.back());
    pending.pop_back();
    for (auto& child : node->children_) pending.push_back(std::move(child));
    node->children_.clear();
    // `node` is destroyed here with no children left — no recursion.
  }
}

std::string_view Node::attr(std::string_view name) const {
  for (const Attribute& a : attributes_) {
    if (a.name == name) return a.value;
  }
  return {};
}

bool Node::has_attr(std::string_view name) const {
  for (const Attribute& a : attributes_) {
    if (a.name == name) return true;
  }
  return false;
}

void Node::set_attr(std::string_view name, std::string value) {
  for (Attribute& a : attributes_) {
    if (a.name == name) {
      a.value = std::move(value);
      return;
    }
  }
  attributes_.push_back(Attribute{std::string(name), std::move(value)});
}

void Node::remove_attr(std::string_view name) {
  for (auto it = attributes_.begin(); it != attributes_.end(); ++it) {
    if (it->name == name) {
      attributes_.erase(it);
      return;
    }
  }
}

void Node::AppendVal(std::string_view more) {
  if (more.empty()) return;
  std::string_view current = val();
  if (current.empty()) {
    set_val(std::string(more));
    return;
  }
  std::string combined(current);
  combined.push_back(' ');
  combined.append(more);
  set_val(std::move(combined));
}

size_t Node::IndexOf(const Node* child) const {
  for (size_t i = 0; i < children_.size(); ++i) {
    if (children_[i].get() == child) return i;
  }
  assert(false && "IndexOf: not a child of this node");
  return children_.size();
}

Node* Node::AddChild(std::unique_ptr<Node> child) {
  assert(child != nullptr);
  child->parent_ = this;
  children_.push_back(std::move(child));
  return children_.back().get();
}

Node* Node::InsertChild(size_t index, std::unique_ptr<Node> child) {
  assert(child != nullptr);
  assert(index <= children_.size());
  child->parent_ = this;
  auto it = children_.insert(
      children_.begin() + static_cast<ptrdiff_t>(index), std::move(child));
  return it->get();
}

std::unique_ptr<Node> Node::RemoveChild(size_t index) {
  assert(index < children_.size());
  std::unique_ptr<Node> removed = std::move(children_[index]);
  children_.erase(children_.begin() + static_cast<ptrdiff_t>(index));
  removed->parent_ = nullptr;
  return removed;
}

std::vector<std::unique_ptr<Node>> Node::RemoveAllChildren() {
  for (auto& c : children_) c->parent_ = nullptr;
  std::vector<std::unique_ptr<Node>> out = std::move(children_);
  children_.clear();
  return out;
}

std::unique_ptr<Node> Node::ReplaceChild(size_t index,
                                         std::unique_ptr<Node> replacement) {
  assert(index < children_.size());
  assert(replacement != nullptr);
  replacement->parent_ = this;
  std::unique_ptr<Node> old = std::move(children_[index]);
  old->parent_ = nullptr;
  children_[index] = std::move(replacement);
  return old;
}

Node* Node::AddElement(NameId name) { return AddChild(MakeElement(name)); }

Node* Node::AddElement(std::string_view name) {
  return AddChild(MakeElement(name));
}

Node* Node::AddText(std::string text) {
  return AddChild(MakeText(std::move(text)));
}

std::unique_ptr<Node> Node::Clone() const {
  auto copy_one = [](const Node& src) {
    std::unique_ptr<Node> copy(new Node(src.type_));
    copy->name_id_ = src.name_id_;
    copy->text_ = src.text_;
    copy->attributes_ = src.attributes_;
    return copy;
  };
  std::unique_ptr<Node> root = copy_one(*this);
  // Iterative DFS: (source node, already-built copy of it). Children are
  // pushed in reverse so left-to-right order is preserved, though order
  // on the work-list is irrelevant — each pair is independent.
  std::vector<std::pair<const Node*, Node*>> pending;
  pending.emplace_back(this, root.get());
  while (!pending.empty()) {
    auto [src, dst] = pending.back();
    pending.pop_back();
    dst->children_.reserve(src->children_.size());
    for (const auto& child : src->children_) {
      Node* child_copy = dst->AddChild(copy_one(*child));
      pending.emplace_back(child.get(), child_copy);
    }
  }
  return root;
}

size_t Node::SubtreeSize() const {
  size_t count = 0;
  std::vector<const Node*> pending;
  pending.push_back(this);
  while (!pending.empty()) {
    const Node* node = pending.back();
    pending.pop_back();
    ++count;
    for (const auto& child : node->children_) pending.push_back(child.get());
  }
  return count;
}

size_t Node::Depth() const {
  size_t depth = 0;
  for (const Node* p = parent_; p != nullptr; p = p->parent_) ++depth;
  return depth;
}

void Node::PreOrder(const std::function<void(const Node&)>& visit) const {
  visit(*this);
  for (const auto& child : children_) child->PreOrder(visit);
}

void Node::PreOrderMutable(const std::function<void(Node&)>& visit) {
  visit(*this);
  // Children may be mutated by the visitor; iterate by index defensively.
  for (size_t i = 0; i < children_.size(); ++i) {
    children_[i]->PreOrderMutable(visit);
  }
}

bool operator==(const Node& a, const Node& b) {
  if (a.type_ != b.type_ || a.name_id_ != b.name_id_ || a.text_ != b.text_ ||
      a.attributes_ != b.attributes_ ||
      a.children_.size() != b.children_.size()) {
    return false;
  }
  for (size_t i = 0; i < a.children_.size(); ++i) {
    if (!(*a.children_[i] == *b.children_[i])) return false;
  }
  return true;
}

namespace {

void DebugAppend(const Node& node, std::string& out) {
  if (node.is_text()) {
    out.push_back('"');
    out.append(node.text());
    out.push_back('"');
    return;
  }
  out.append(node.name());
  if (!node.val().empty()) {
    out.append("[val=");
    out.append(node.val());
    out.push_back(']');
  }
  if (node.child_count() > 0) {
    out.push_back('(');
    for (size_t i = 0; i < node.child_count(); ++i) {
      if (i > 0) out.push_back(' ');
      DebugAppend(*node.child(i), out);
    }
    out.push_back(')');
  }
}

}  // namespace

std::string Node::DebugString() const {
  std::string out;
  DebugAppend(*this, out);
  return out;
}

TreeStats MeasureTree(const Node& root) {
  TreeStats stats;
  std::vector<std::pair<const Node*, size_t>> pending;
  pending.emplace_back(&root, 0);
  while (!pending.empty()) {
    const auto [node, depth] = pending.back();
    pending.pop_back();
    ++stats.node_count;
    if (depth > stats.max_depth) stats.max_depth = depth;
    for (size_t i = 0; i < node->child_count(); ++i) {
      pending.emplace_back(node->child(i), depth + 1);
    }
  }
  return stats;
}

}  // namespace webre
