#ifndef WEBRE_XML_NAME_TABLE_H_
#define WEBRE_XML_NAME_TABLE_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>

#include "util/arena.h"

namespace webre {

/// Interned element-name handle. Equal ids ⇔ equal name strings (one
/// global table), so name equality anywhere in the pipeline is a 32-bit
/// integer compare instead of a string compare, and a `Node` carries
/// 4 bytes instead of an owned std::string.
using NameId = uint32_t;

/// Id carried by text nodes (they have no name); NameTable::NameOf maps
/// it to the empty view.
inline constexpr NameId kInvalidNameId = 0xFFFFFFFFu;

/// Process-wide element-name interner.
///
/// The table is pre-seeded (at first use, before any thread fan-out)
/// with the HTML tag vocabulary, the pipeline's synthetic names
/// (#root, #comment, TOKEN, GROUP) and the bundled domain concept
/// names, so the conversion hot path interns with zero locking: seeded
/// lookups hit an immutable map, and NameOf is an array index into
/// chunked storage published with release/acquire ordering. Only a
/// never-before-seen dynamic name (an exotic author tag) takes the
/// mutex, once per distinct name for the process lifetime.
///
/// Ids are assigned in first-intern order: seeded names have stable ids
/// across runs; dynamic ids may vary with thread interleaving, so no
/// output may ever depend on the *order* of ids — only on equality.
/// (The determinism suite pins this.)
///
/// Growth: the table never shrinks. Capacity is kMaxNames entries;
/// exceeding it throws std::length_error, which the pipeline's
/// per-document exception barrier converts into one failed document.
class NameTable {
 public:
  /// 2^20 distinct names ≈ far beyond any real corpus vocabulary, small
  /// enough that a hostile batch fails fast instead of eating the heap.
  static constexpr size_t kMaxNames = 1u << 20;

  /// The process-wide table (constructed, and seeded, on first use).
  static NameTable& Global();

  /// Returns the id for `name`, interning it if new.
  NameId Intern(std::string_view name);

  /// Interns the ASCII-lowercased form of `name` without materializing
  /// an intermediate std::string for short names (tag names in the
  /// lexer hot path).
  NameId InternLowercase(std::string_view name);

  /// Returns the id for `name` if present, else kInvalidNameId. Never
  /// inserts; lock-free for seeded names.
  NameId Find(std::string_view name) const;

  /// The interned string for `id`; empty view for kInvalidNameId. The
  /// returned view is valid for the process lifetime (storage is
  /// append-only and pointer-stable).
  std::string_view NameOf(NameId id) const {
    if (id == kInvalidNameId) return {};
    const Entry* chunk =
        chunks_[id >> kChunkShift].load(std::memory_order_acquire);
    const Entry& e = chunk[id & (kChunkSize - 1)];
    return std::string_view(e.data, e.size);
  }

  /// Number of interned names (seeded + dynamic).
  size_t size() const { return count_.load(std::memory_order_acquire); }

  /// Number of pre-seeded names; ids below this are the frozen seeded
  /// vocabulary (tag_tables builds its flag arrays over this range).
  size_t seed_count() const { return seed_count_; }

 private:
  static constexpr size_t kChunkShift = 12;
  static constexpr size_t kChunkSize = 1u << kChunkShift;
  static constexpr size_t kNumChunks = kMaxNames / kChunkSize;

  struct Entry {
    const char* data;
    uint32_t size;
  };

  NameTable();

  /// Slow path: mutex-guarded lookup/insert of a non-seeded name.
  NameId InternDynamic(std::string_view name);

  /// Appends `name` to the stable storage and publishes its entry.
  /// Caller holds mutex_.
  NameId Append(std::string_view name);

  // Seeded vocabulary: immutable after the constructor, hence read
  // lock-free. Keys view into storage owned by `storage_`.
  std::unordered_map<std::string_view, NameId> seeded_;
  size_t seed_count_ = 0;

  std::atomic<Entry*> chunks_[kNumChunks] = {};
  std::atomic<size_t> count_{0};

  mutable std::mutex mutex_;
  // Dynamic names seen so far (keys view into `storage_`).
  std::unordered_map<std::string_view, NameId> dynamic_;
  Arena storage_;  // character data + Entry chunks, pointer-stable
};

/// Convenience: Global().Intern(name).
inline NameId InternName(std::string_view name) {
  return NameTable::Global().Intern(name);
}

}  // namespace webre

#endif  // WEBRE_XML_NAME_TABLE_H_
