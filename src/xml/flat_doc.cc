#include "xml/flat_doc.h"

#include <cstring>
#include <vector>

#include "util/strings.h"

namespace webre {
namespace {

// DFS frame: `index` is the flat pre-order index already assigned to
// `node`; `child` is the next child slot to visit.
struct Frame {
  const Node* node;
  uint32_t index;
  size_t child;
};

}  // namespace

std::unique_ptr<FlatDoc> FlatDoc::Freeze(const Node& root) {
  // Phase one: collect into growable temporaries with an explicit
  // stack (depth-safe, like every other whole-tree walk in the xml
  // layer). Only element nodes get indices; text children are skipped
  // because queries address elements and their `val` attribute.
  std::vector<NameId> names;
  std::vector<uint32_t> parents;
  std::vector<uint32_t> depths;
  std::vector<uint32_t> ends;
  std::vector<uint32_t> offsets;
  std::string text;

  const size_t hint = root.SubtreeSize();
  names.reserve(hint);
  parents.reserve(hint);
  depths.reserve(hint);
  ends.reserve(hint);
  offsets.reserve(hint + 1);

  auto open = [&](const Node& node, uint32_t parent,
                  uint32_t depth) -> uint32_t {
    uint32_t index = static_cast<uint32_t>(names.size());
    names.push_back(node.name_id());
    parents.push_back(parent);
    depths.push_back(depth);
    ends.push_back(0);  // patched when the subtree closes
    offsets.push_back(static_cast<uint32_t>(text.size()));
    text.append(node.val());
    return index;
  };

  std::vector<Frame> stack;
  stack.push_back(Frame{&root, open(root, kNoParent, 0), 0});
  while (!stack.empty()) {
    Frame& top = stack.back();
    const auto& children = top.node->children();
    size_t child = top.child;
    while (child < children.size() && !children[child]->is_element()) {
      ++child;
    }
    if (child == children.size()) {
      ends[top.index] = static_cast<uint32_t>(names.size());
      stack.pop_back();
      continue;
    }
    top.child = child + 1;
    const Node* node = children[child].get();
    const uint32_t parent = top.index;
    const uint32_t depth = depths[parent] + 1;
    // `open` and push_back may reallocate; `top` is dead after this.
    stack.push_back(Frame{node, open(*node, parent, depth), 0});
  }
  offsets.push_back(static_cast<uint32_t>(text.size()));

  // Phase two: pack everything into one block. All uint32 arrays come
  // first so their 4-byte alignment holds (the block itself is at
  // least pointer-aligned); the two byte pools follow.
  const size_t count = names.size();
  const size_t ints_bytes = sizeof(uint32_t) * (4 * count + (count + 1));
  const size_t block_bytes = ints_bytes + 2 * text.size();

  std::unique_ptr<FlatDoc> doc(new FlatDoc());
  doc->count_ = static_cast<uint32_t>(count);
  doc->block_bytes_ = block_bytes;
  doc->block_ = std::make_unique<char[]>(block_bytes);

  char* cursor = doc->block_.get();
  auto place_u32 = [&cursor](const std::vector<uint32_t>& src) {
    uint32_t* dst = reinterpret_cast<uint32_t*>(cursor);
    std::memcpy(dst, src.data(), src.size() * sizeof(uint32_t));
    cursor += src.size() * sizeof(uint32_t);
    return dst;
  };
  doc->names_ = place_u32(names);
  doc->parents_ = place_u32(parents);
  doc->depths_ = place_u32(depths);
  doc->subtree_end_ = place_u32(ends);
  doc->text_off_ = place_u32(offsets);

  char* raw = cursor;
  std::memcpy(raw, text.data(), text.size());
  doc->text_ = raw;
  char* lower = raw + text.size();
  for (size_t i = 0; i < text.size(); ++i) {
    lower[i] = AsciiToLower(text[i]);
  }
  doc->lower_ = lower;
  return doc;
}

Status FlatDoc::InitFromBlock(const char* base, size_t block_bytes,
                              uint32_t element_count, NameId name_limit) {
  // Untrusted input (a WAL record or snapshot section): every claim the
  // header makes about the block is proven here, so the accessors above
  // can stay unchecked index arithmetic.
  const size_t count = element_count;
  // 4 parallel arrays of `count` u32s plus count+1 text offsets. Cap the
  // count so the size arithmetic cannot overflow even on 32-bit size_t.
  if (count > (1u << 28)) {
    return Status::InvalidArgument("flat block: element count too large");
  }
  const size_t ints_bytes = sizeof(uint32_t) * (5 * count + 1);
  if (block_bytes < ints_bytes || (block_bytes - ints_bytes) % 2 != 0) {
    return Status::InvalidArgument("flat block: size does not match layout");
  }
  const size_t text_size = (block_bytes - ints_bytes) / 2;
  if (text_size > 0xFFFFFFFFu) {
    return Status::InvalidArgument("flat block: text pool too large");
  }

  const uint32_t* u32s = reinterpret_cast<const uint32_t*>(base);
  const uint32_t* names = u32s;
  const uint32_t* parents = u32s + count;
  const uint32_t* depths = u32s + 2 * count;
  const uint32_t* ends = u32s + 3 * count;
  const uint32_t* offsets = u32s + 4 * count;

  if (offsets[0] != 0 ||
      offsets[count] != static_cast<uint32_t>(text_size)) {
    return Status::InvalidArgument("flat block: text offsets out of range");
  }
  for (size_t i = 0; i < count; ++i) {
    if (offsets[i] > offsets[i + 1]) {
      return Status::InvalidArgument("flat block: text offsets not sorted");
    }
    if (names[i] >= name_limit) {
      return Status::InvalidArgument("flat block: NameId out of range");
    }
    // Pre-order invariants: parents precede children; depth increments
    // along the parent edge; subtrees nest.
    if (i == 0) {
      if (parents[0] != kNoParent || depths[0] != 0 ||
          (count > 0 && ends[0] != count)) {
        return Status::InvalidArgument("flat block: malformed root");
      }
    } else {
      const uint32_t parent = parents[i];
      if (parent >= i || depths[i] != depths[parent] + 1 ||
          ends[i] > ends[parent]) {
        return Status::InvalidArgument("flat block: malformed tree links");
      }
    }
    if (ends[i] <= i || ends[i] > count) {
      return Status::InvalidArgument("flat block: malformed subtree range");
    }
  }

  count_ = element_count;
  block_bytes_ = block_bytes;
  names_ = names;
  parents_ = parents;
  depths_ = depths;
  subtree_end_ = ends;
  text_off_ = offsets;
  text_ = base + ints_bytes;
  lower_ = base + ints_bytes + text_size;
  return Status::Ok();
}

StatusOr<std::unique_ptr<FlatDoc>> FlatDoc::FromOwnedBlock(
    std::unique_ptr<char[]> block, size_t block_bytes, uint32_t element_count,
    NameId name_limit) {
  std::unique_ptr<FlatDoc> doc(new FlatDoc());
  Status status = doc->InitFromBlock(block.get(), block_bytes, element_count,
                                     name_limit);
  if (!status.ok()) return status;
  doc->block_ = std::move(block);
  return doc;
}

StatusOr<std::unique_ptr<FlatDoc>> FlatDoc::FromMappedBlock(
    const char* data, size_t block_bytes, uint32_t element_count,
    NameId name_limit) {
  if (reinterpret_cast<uintptr_t>(data) % alignof(uint32_t) != 0) {
    return Status::InvalidArgument("flat block: mapped bytes misaligned");
  }
  std::unique_ptr<FlatDoc> doc(new FlatDoc());
  Status status =
      doc->InitFromBlock(data, block_bytes, element_count, name_limit);
  if (!status.ok()) return status;
  return doc;
}

}  // namespace webre
