#ifndef WEBRE_XML_NODE_H_
#define WEBRE_XML_NODE_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "xml/name_table.h"

namespace webre {

/// Kind of a tree node.
enum class NodeType {
  kElement,  ///< named element with attributes and children
  kText,     ///< character data leaf
};

/// A single name="value" attribute. Order of attributes is preserved.
struct Attribute {
  std::string name;
  std::string value;

  friend bool operator==(const Attribute& a, const Attribute& b) {
    return a.name == b.name && a.value == b.value;
  }
};

/// Ordered tree node shared by the HTML and XML stages of the pipeline.
///
/// The paper "considers an input HTML document as XML document" (§2.3):
/// both the parsed HTML tree and the restructured XML tree use this type.
/// Element names are interned in the process-wide NameTable and stored
/// as 32-bit NameIds, so renames and name-equality checks in the
/// restructuring rules are integer operations and a node carries no
/// owned name string. HTML parsing lowercases tag names while the
/// restructuring rules emit uppercase concept names, so the two
/// vocabularies never collide.
///
/// Ownership: a node owns its children via unique_ptr; `parent()` is a
/// non-owning back-pointer maintained by the mutation methods.
///
/// Allocation: when a NodeArena is installed on the current thread
/// (NodeArenaScope), nodes are carved out of it and `delete` frees no
/// memory — the document's whole tree dies in O(1) with the arena.
/// Without a scope, nodes come from the heap as usual. Each node carries
/// a one-word hidden header recording its origin, so heap nodes and
/// arena nodes can be destroyed through the same unique_ptr machinery.
class Node {
 public:
  /// Creates an element node with the given (interned) name.
  static std::unique_ptr<Node> MakeElement(NameId name);
  /// Creates an element node, interning `name`.
  static std::unique_ptr<Node> MakeElement(std::string_view name);
  /// Creates a text node with the given character data.
  static std::unique_ptr<Node> MakeText(std::string text);

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  /// Destruction is iterative (an explicit work-list instead of the
  /// default recursive member destructor), so freeing a pathologically
  /// deep tree cannot overflow the stack even when such a tree was built
  /// without resource limits.
  ~Node();

  /// Arena-aware allocation (see class comment). The sized/unsized
  /// deletes both understand the hidden origin header.
  static void* operator new(size_t size);
  static void operator delete(void* ptr) noexcept;
  static void operator delete(void* ptr, size_t size) noexcept;

  /// Nodes constructed on the calling thread since process start, arena
  /// and heap alike. The pipeline differences this around a document to
  /// report `mem_node_allocs` without a global atomic in the hot path.
  static uint64_t AllocationsOnThisThread();

  NodeType type() const { return type_; }
  bool is_element() const { return type_ == NodeType::kElement; }
  bool is_text() const { return type_ == NodeType::kText; }

  /// Interned element name id; kInvalidNameId for text nodes.
  NameId name_id() const { return name_id_; }
  /// Element name; empty for text nodes. The view points into the
  /// process-wide NameTable and never dangles.
  std::string_view name() const {
    return NameTable::Global().NameOf(name_id_);
  }
  /// Renames the element.
  void set_name(NameId name) { name_id_ = name; }
  void set_name(std::string_view name) {
    name_id_ = NameTable::Global().Intern(name);
  }

  /// Character data; empty for element nodes.
  const std::string& text() const { return text_; }
  void set_text(std::string text) { text_ = std::move(text); }

  /// Non-owning parent pointer; null for a root.
  Node* parent() const { return parent_; }

  /// Attributes in document order.
  const std::vector<Attribute>& attributes() const { return attributes_; }

  /// Returns the value of attribute `name`, or an empty view if absent.
  std::string_view attr(std::string_view name) const;
  /// True iff attribute `name` is present.
  bool has_attr(std::string_view name) const;
  /// Sets (or overwrites) attribute `name`.
  void set_attr(std::string_view name, std::string value);
  /// Removes attribute `name` if present.
  void remove_attr(std::string_view name);

  /// The paper's `val` attribute: text content carried by concept
  /// elements ("each HTML and XML element has an attribute named val of
  /// type CDATA", §2.3).
  std::string_view val() const { return attr("val"); }
  void set_val(std::string value) { set_attr("val", std::move(value)); }
  /// Appends `more` to the `val` attribute, inserting a single space
  /// separator when both sides are non-empty. Used by the concept instance
  /// rule to pass unidentified text up to the parent without loss.
  void AppendVal(std::string_view more);

  /// Children in document order.
  const std::vector<std::unique_ptr<Node>>& children() const {
    return children_;
  }
  size_t child_count() const { return children_.size(); }
  Node* child(size_t i) { return children_[i].get(); }
  const Node* child(size_t i) const { return children_[i].get(); }

  /// Index of `child` among this node's children. `child` must be a child.
  size_t IndexOf(const Node* child) const;

  /// Appends `child` and returns a raw pointer to it.
  Node* AddChild(std::unique_ptr<Node> child);
  /// Inserts `child` at position `index` (<= child_count()).
  Node* InsertChild(size_t index, std::unique_ptr<Node> child);
  /// Detaches and returns the child at `index`.
  std::unique_ptr<Node> RemoveChild(size_t index);
  /// Detaches and returns all children.
  std::vector<std::unique_ptr<Node>> RemoveAllChildren();
  /// Replaces the child at `index` with `replacement`; returns the old
  /// child.
  std::unique_ptr<Node> ReplaceChild(size_t index,
                                     std::unique_ptr<Node> replacement);

  /// Convenience: appends a fresh element child and returns it.
  Node* AddElement(NameId name);
  Node* AddElement(std::string_view name);
  /// Convenience: appends a fresh text child and returns it.
  Node* AddText(std::string text);

  /// Deep copy (parent of the copy is null). Iterative: cloning a tree
  /// deeper than the stack is safe, matching the destructor's guarantee.
  std::unique_ptr<Node> Clone() const;

  /// Number of nodes in this subtree, including this node. Iterative.
  size_t SubtreeSize() const;

  /// Depth of this node: 0 for a root, parent depth + 1 otherwise.
  size_t Depth() const;

  /// Pre-order traversal; `visit` is called for every node in the subtree.
  void PreOrder(const std::function<void(const Node&)>& visit) const;
  /// Pre-order traversal with mutable access.
  void PreOrderMutable(const std::function<void(Node&)>& visit);

  /// Structural equality: same type, name, text, attributes and children.
  friend bool operator==(const Node& a, const Node& b);

  /// Returns a compact single-line debug rendering, e.g.
  /// `resume(contact[val=..] education(degree date))`.
  std::string DebugString() const;

 private:
  explicit Node(NodeType type) : type_(type) {}

  NodeType type_;
  NameId name_id_ = kInvalidNameId;
  std::string text_;
  Node* parent_ = nullptr;
  std::vector<Attribute> attributes_;
  std::vector<std::unique_ptr<Node>> children_;
};

/// Size and shape of a subtree, gathered in one iterative walk (safe on
/// trees of any depth). Used by the resource guards to re-check trees
/// that grow between pipeline stages.
struct TreeStats {
  /// Nodes in the subtree, including the root.
  size_t node_count = 0;
  /// Depth of the deepest node relative to `root` (root itself = 0).
  size_t max_depth = 0;
};

/// Measures `root`'s subtree without recursion.
TreeStats MeasureTree(const Node& root);

}  // namespace webre

#endif  // WEBRE_XML_NODE_H_
