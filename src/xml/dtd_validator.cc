#include "xml/dtd_validator.h"

#include <cstdint>
#include <string_view>
#include <vector>

namespace webre {
namespace {

// Set of sequence positions 0..capacity-1 stored as a bitset. Content-model
// matching walks position sets heavily (one per particle per start
// position); inline storage covers any realistic element fan-out so the
// whole match usually touches the heap zero times. Every set created while
// matching one element shares the same capacity (child count + 1).
class PositionSet {
 public:
  explicit PositionSet(size_t num_positions)
      : num_words_((num_positions + 63) / 64) {
    if (num_words_ > kInlineWords) heap_.assign(num_words_, 0);
  }

  void Insert(size_t pos) { words()[pos >> 6] |= uint64_t{1} << (pos & 63); }

  bool Contains(size_t pos) const {
    return (words()[pos >> 6] >> (pos & 63)) & 1;
  }

  bool Empty() const {
    const uint64_t* w = words();
    for (size_t i = 0; i < num_words_; ++i) {
      if (w[i] != 0) return false;
    }
    return true;
  }

  void UnionWith(const PositionSet& other) {
    uint64_t* w = words();
    const uint64_t* o = other.words();
    for (size_t i = 0; i < num_words_; ++i) w[i] |= o[i];
  }

  /// Calls `fn(pos)` for every member in ascending order.
  template <typename Fn>
  void ForEach(Fn fn) const {
    const uint64_t* w = words();
    for (size_t i = 0; i < num_words_; ++i) {
      uint64_t bits = w[i];
      while (bits != 0) {
        fn(i * 64 + static_cast<size_t>(__builtin_ctzll(bits)));
        bits &= bits - 1;
      }
    }
  }

 private:
  static constexpr size_t kInlineWords = 4;  // 256 positions inline

  uint64_t* words() { return heap_.empty() ? inline_ : heap_.data(); }
  const uint64_t* words() const {
    return heap_.empty() ? inline_ : heap_.data();
  }

  size_t num_words_;
  uint64_t inline_[kInlineWords] = {};
  std::vector<uint64_t> heap_;
};

// Returns every position the particle (without its occurrence indicator)
// can consume up to, starting at `start`, over the child-name sequence.
PositionSet MatchOnce(const ContentParticle& particle,
                      const std::vector<std::string_view>& names,
                      size_t start);

// Returns every end position reachable by matching `particle` (including
// its occurrence indicator) starting at `start`.
PositionSet MatchEnds(const ContentParticle& particle,
                      const std::vector<std::string_view>& names,
                      size_t start) {
  PositionSet once = MatchOnce(particle, names, start);
  switch (particle.occurrence) {
    case Occurrence::kOne:
      return once;
    case Occurrence::kOptional: {
      once.Insert(start);
      return once;
    }
    case Occurrence::kStar:
    case Occurrence::kPlus: {
      // Fixed-point closure over repetitions. Positions never decrease, so
      // the loop terminates; skip zero-progress matches to avoid cycling on
      // nullable particles.
      PositionSet reached = once;
      PositionSet frontier = once;
      while (!frontier.Empty()) {
        PositionSet next(names.size() + 1);
        frontier.ForEach([&](size_t pos) {
          MatchOnce(particle, names, pos).ForEach([&](size_t end) {
            if (end > pos && !reached.Contains(end)) {
              reached.Insert(end);
              next.Insert(end);
            }
          });
        });
        frontier = std::move(next);
      }
      if (particle.occurrence == Occurrence::kStar) reached.Insert(start);
      return reached;
    }
  }
  return once;
}

PositionSet MatchOnce(const ContentParticle& particle,
                      const std::vector<std::string_view>& names,
                      size_t start) {
  PositionSet ends(names.size() + 1);
  switch (particle.kind) {
    case ContentParticle::Kind::kElement:
      if (start < names.size() && names[start] == particle.name) {
        ends.Insert(start + 1);
      }
      break;
    case ContentParticle::Kind::kPcdata:
      // Text children are filtered out before matching; #PCDATA consumes
      // nothing from the element-child sequence.
      ends.Insert(start);
      break;
    case ContentParticle::Kind::kSequence: {
      PositionSet positions(names.size() + 1);
      positions.Insert(start);
      for (const ContentParticle& member : particle.children) {
        PositionSet next(names.size() + 1);
        positions.ForEach([&](size_t pos) {
          next.UnionWith(MatchEnds(member, names, pos));
        });
        positions = std::move(next);
        if (positions.Empty()) break;
      }
      ends = std::move(positions);
      break;
    }
    case ContentParticle::Kind::kChoice:
      for (const ContentParticle& member : particle.children) {
        ends.UnionWith(MatchEnds(member, names, start));
      }
      break;
  }
  return ends;
}

void ValidateElement(const Node& element, const Dtd& dtd,
                     DtdValidationResult& result) {
  const ElementDecl* decl = dtd.Find(element.name());
  if (decl == nullptr) {
    result.violations.push_back(
        {std::string(element.name()),
         "element <" + std::string(element.name()) + "> is not declared"});
  } else if (!decl->pcdata_only) {
    // Views into the children's own names — valid for the whole match.
    std::vector<std::string_view> child_names;
    for (size_t i = 0; i < element.child_count(); ++i) {
      const Node* child = element.child(i);
      if (child->is_element()) child_names.push_back(child->name());
    }
    PositionSet ends = MatchEnds(decl->content, child_names, 0);
    if (!ends.Contains(child_names.size())) {
      std::string got = "(";
      for (size_t i = 0; i < child_names.size(); ++i) {
        if (i > 0) got.append(", ");
        got.append(child_names[i]);
      }
      got.push_back(')');
      result.violations.push_back(
          {std::string(element.name()),
           "children " + got + " do not match content model " +
               decl->content.ToString()});
    }
  } else {
    for (size_t i = 0; i < element.child_count(); ++i) {
      if (element.child(i)->is_element()) {
        result.violations.push_back(
            {std::string(element.name()),
             "element <" + std::string(element.name()) +
                 "> is declared (#PCDATA) but has element children"});
        break;
      }
    }
  }
  for (size_t i = 0; i < element.child_count(); ++i) {
    const Node* child = element.child(i);
    if (child->is_element()) ValidateElement(*child, dtd, result);
  }
}

}  // namespace

DtdValidationResult ValidateAgainstDtd(const Node& root, const Dtd& dtd) {
  DtdValidationResult result;
  if (!root.is_element()) {
    result.violations.push_back({"", "document root is not an element"});
    return result;
  }
  if (!dtd.root().empty() && root.name() != dtd.root()) {
    result.violations.push_back(
        {std::string(root.name()), "root element <" + std::string(root.name()) +
                                       "> does not match DTD root <" +
                                       dtd.root() + ">"});
  }
  ValidateElement(root, dtd, result);
  return result;
}

bool ConformsToDtd(const Node& root, const Dtd& dtd) {
  return ValidateAgainstDtd(root, dtd).valid();
}

}  // namespace webre
