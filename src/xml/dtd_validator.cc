#include "xml/dtd_validator.h"

#include <algorithm>
#include <set>

namespace webre {
namespace {

// Returns every position the particle (without its occurrence indicator)
// can consume up to, starting at `start`, over the child-name sequence.
std::set<size_t> MatchOnce(const ContentParticle& particle,
                           const std::vector<std::string>& names,
                           size_t start);

// Returns every end position reachable by matching `particle` (including
// its occurrence indicator) starting at `start`.
std::set<size_t> MatchEnds(const ContentParticle& particle,
                           const std::vector<std::string>& names,
                           size_t start) {
  std::set<size_t> once = MatchOnce(particle, names, start);
  switch (particle.occurrence) {
    case Occurrence::kOne:
      return once;
    case Occurrence::kOptional: {
      once.insert(start);
      return once;
    }
    case Occurrence::kStar:
    case Occurrence::kPlus: {
      // Fixed-point closure over repetitions. Positions never decrease, so
      // the loop terminates; skip zero-progress matches to avoid cycling on
      // nullable particles.
      std::set<size_t> reached = once;
      std::set<size_t> frontier = once;
      while (!frontier.empty()) {
        std::set<size_t> next;
        for (size_t pos : frontier) {
          for (size_t end : MatchOnce(particle, names, pos)) {
            if (end > pos && reached.insert(end).second) next.insert(end);
          }
        }
        frontier = std::move(next);
      }
      if (particle.occurrence == Occurrence::kStar) reached.insert(start);
      return reached;
    }
  }
  return once;
}

std::set<size_t> MatchOnce(const ContentParticle& particle,
                           const std::vector<std::string>& names,
                           size_t start) {
  std::set<size_t> ends;
  switch (particle.kind) {
    case ContentParticle::Kind::kElement:
      if (start < names.size() && names[start] == particle.name) {
        ends.insert(start + 1);
      }
      break;
    case ContentParticle::Kind::kPcdata:
      // Text children are filtered out before matching; #PCDATA consumes
      // nothing from the element-child sequence.
      ends.insert(start);
      break;
    case ContentParticle::Kind::kSequence: {
      std::set<size_t> positions = {start};
      for (const ContentParticle& member : particle.children) {
        std::set<size_t> next;
        for (size_t pos : positions) {
          std::set<size_t> member_ends = MatchEnds(member, names, pos);
          next.insert(member_ends.begin(), member_ends.end());
        }
        positions = std::move(next);
        if (positions.empty()) break;
      }
      ends = std::move(positions);
      break;
    }
    case ContentParticle::Kind::kChoice:
      for (const ContentParticle& member : particle.children) {
        std::set<size_t> member_ends = MatchEnds(member, names, start);
        ends.insert(member_ends.begin(), member_ends.end());
      }
      break;
  }
  return ends;
}

void ValidateElement(const Node& element, const Dtd& dtd,
                     DtdValidationResult& result) {
  const ElementDecl* decl = dtd.Find(element.name());
  if (decl == nullptr) {
    result.violations.push_back(
        {element.name(), "element <" + element.name() + "> is not declared"});
  } else if (!decl->pcdata_only) {
    std::vector<std::string> child_names;
    for (size_t i = 0; i < element.child_count(); ++i) {
      const Node* child = element.child(i);
      if (child->is_element()) child_names.push_back(child->name());
    }
    std::set<size_t> ends = MatchEnds(decl->content, child_names, 0);
    if (ends.find(child_names.size()) == ends.end()) {
      std::string got = "(";
      for (size_t i = 0; i < child_names.size(); ++i) {
        if (i > 0) got.append(", ");
        got.append(child_names[i]);
      }
      got.push_back(')');
      result.violations.push_back(
          {element.name(), "children " + got + " do not match content model " +
                               decl->content.ToString()});
    }
  } else {
    for (size_t i = 0; i < element.child_count(); ++i) {
      if (element.child(i)->is_element()) {
        result.violations.push_back(
            {element.name(), "element <" + element.name() +
                                 "> is declared (#PCDATA) but has element "
                                 "children"});
        break;
      }
    }
  }
  for (size_t i = 0; i < element.child_count(); ++i) {
    const Node* child = element.child(i);
    if (child->is_element()) ValidateElement(*child, dtd, result);
  }
}

}  // namespace

DtdValidationResult ValidateAgainstDtd(const Node& root, const Dtd& dtd) {
  DtdValidationResult result;
  if (!root.is_element()) {
    result.violations.push_back({"", "document root is not an element"});
    return result;
  }
  if (!dtd.root().empty() && root.name() != dtd.root()) {
    result.violations.push_back(
        {root.name(), "root element <" + root.name() +
                          "> does not match DTD root <" + dtd.root() + ">"});
  }
  ValidateElement(root, dtd, result);
  return result;
}

bool ConformsToDtd(const Node& root, const Dtd& dtd) {
  return ValidateAgainstDtd(root, dtd).valid();
}

}  // namespace webre
