#ifndef WEBRE_XML_DTD_H_
#define WEBRE_XML_DTD_H_

#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace webre {

/// Occurrence indicator attached to a content particle.
enum class Occurrence {
  kOne,       ///< exactly once (no indicator)
  kOptional,  ///< `?`
  kStar,      ///< `*`
  kPlus,      ///< `+`
};

/// Returns "", "?", "*" or "+".
std::string_view OccurrenceSuffix(Occurrence occ);

/// A node of the DTD content-model expression
///   alpha := e | #PCDATA | (alpha, alpha, ...) | (alpha | alpha | ...)
/// each optionally decorated with an occurrence indicator (§3.3).
struct ContentParticle {
  enum class Kind {
    kElement,   ///< a child element name
    kPcdata,    ///< literal #PCDATA
    kSequence,  ///< comma-separated group
    kChoice,    ///< pipe-separated group
  };

  Kind kind = Kind::kElement;
  Occurrence occurrence = Occurrence::kOne;
  /// Element name; only for kElement.
  std::string name;
  /// Group members; only for kSequence/kChoice.
  std::vector<ContentParticle> children;

  /// Leaf particle for element `name`.
  static ContentParticle Element(std::string name,
                                 Occurrence occ = Occurrence::kOne);
  /// The #PCDATA particle.
  static ContentParticle Pcdata();
  /// Sequence group over `children`.
  static ContentParticle Sequence(std::vector<ContentParticle> children,
                                  Occurrence occ = Occurrence::kOne);
  /// Choice group over `children`.
  static ContentParticle Choice(std::vector<ContentParticle> children,
                                Occurrence occ = Occurrence::kOne);

  /// Renders the particle as DTD syntax, e.g. `(contact+, objective?)`.
  std::string ToString() const;

  friend bool operator==(const ContentParticle& a, const ContentParticle& b);
};

/// Declaration of one element type.
struct ElementDecl {
  std::string name;
  /// When true the element has content `(#PCDATA)` only (a leaf in the
  /// majority schema); `content` is ignored.
  bool pcdata_only = false;
  ContentParticle content;

  /// Renders as `<!ELEMENT name (...)>`.
  std::string ToString() const;
};

/// A document type definition: a root element name plus element
/// declarations in document order. This is the output format of the
/// majority-schema-to-DTD derivation (§3.3).
class Dtd {
 public:
  Dtd() = default;

  /// The document element name.
  const std::string& root() const { return root_; }
  void set_root(std::string root) { root_ = std::move(root); }

  /// Declarations in insertion order.
  const std::vector<ElementDecl>& elements() const { return elements_; }

  /// Adds (or replaces) the declaration for `decl.name`.
  void AddElement(ElementDecl decl);

  /// Returns the declaration for `name`, or null if undeclared.
  const ElementDecl* Find(std::string_view name) const;

  /// Renders the whole DTD as `<!ELEMENT ...>` lines. With
  /// `include_attlist`, every element also gets
  /// `<!ATTLIST name val CDATA #IMPLIED>` — the paper's convention that
  /// "each HTML and XML element has an attribute named val of type
  /// CDATA" (§2.3).
  std::string ToString(bool include_attlist = false) const;

 private:
  std::string root_;
  std::vector<ElementDecl> elements_;
  std::map<std::string, size_t, std::less<>> index_;
};

}  // namespace webre

#endif  // WEBRE_XML_DTD_H_
