#ifndef WEBRE_CLASSIFY_FEATURES_H_
#define WEBRE_CLASSIFY_FEATURES_H_

#include <string>
#include <string_view>
#include <vector>

namespace webre {

/// Turns a token's text into a bag of word features for the multinomial
/// Bayes classifier (§2.3.1 uses "the statistics of associating words in
/// the token with concept instances").
///
/// Normalization:
///  - words are lowercased and stripped of surrounding punctuation;
///  - four-digit numbers in [1900, 2099] map to the shape feature
///    `#year#`, other pure numbers to `#num#`, and digit/period/slash
///    mixes like "3.8/4.0" to `#ratio#` — numeric shapes, not the exact
///    values, are what signal date- and GPA-like tokens;
///  - empty results are possible (e.g. a token of pure punctuation).
std::vector<std::string> ExtractTokenFeatures(std::string_view text);

}  // namespace webre

#endif  // WEBRE_CLASSIFY_FEATURES_H_
