#include "classify/features.h"

#include "util/strings.h"

namespace webre {
namespace {

// Strips non-alphanumeric characters from both ends of `word`.
std::string_view StripPunct(std::string_view word) {
  size_t begin = 0;
  while (begin < word.size() && !IsAsciiAlnum(word[begin])) ++begin;
  size_t end = word.size();
  while (end > begin && !IsAsciiAlnum(word[end - 1])) --end;
  return word.substr(begin, end - begin);
}

// Classifies the shape of a stripped word; returns an empty view when the
// word has no special numeric shape.
std::string_view NumericShape(std::string_view word) {
  bool any_digit = false;
  bool all_digits = true;
  bool ratio_chars = false;  // '.' or '/' between digits
  for (char c : word) {
    if (IsAsciiDigit(c)) {
      any_digit = true;
    } else {
      all_digits = false;
      if (c == '.' || c == '/') {
        ratio_chars = true;
      } else {
        return {};
      }
    }
  }
  if (!any_digit) return {};
  if (all_digits) {
    if (word.size() == 4 && (word[0] == '1' || word[0] == '2') &&
        (word[1] == '9' || word[1] == '0')) {
      return "#year#";
    }
    return "#num#";
  }
  if (ratio_chars) return "#ratio#";
  return "#num#";
}

}  // namespace

std::vector<std::string> ExtractTokenFeatures(std::string_view text) {
  std::vector<std::string> features;
  for (const std::string& raw : SplitWords(text)) {
    std::string_view word = StripPunct(raw);
    if (word.empty()) continue;
    std::string_view shape = NumericShape(word);
    if (!shape.empty()) {
      features.emplace_back(shape);
    } else {
      features.push_back(AsciiLower(word));
    }
  }
  return features;
}

}  // namespace webre
