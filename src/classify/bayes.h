#ifndef WEBRE_CLASSIFY_BAYES_H_
#define WEBRE_CLASSIFY_BAYES_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace webre {

/// Multinomial naive Bayes text classifier with Laplace (add-one)
/// smoothing — the paper's second concept-instance recognizer (§2.3.1,
/// citing Chakrabarti's hypertext-mining survey [12]).
///
/// Training examples are (label, bag-of-words) pairs; classification
/// returns the label maximizing
///   log P(c) + sum_w log P(w | c).
/// A minimum log-odds margin over the runner-up turns low-confidence
/// predictions into "unknown", matching the paper's note that tokens may
/// be "classified as 'unknown' in case of the Bayes classifier".
class BayesClassifier {
 public:
  /// Classification outcome. `label` is empty when the classifier has no
  /// training data or the input has no known features at all.
  struct Prediction {
    std::string label;
    /// Posterior log-probability (unnormalized) of the winning label.
    double log_score = 0.0;
    /// Log-odds gap to the second-best label; +inf with a single class.
    double margin = 0.0;
  };

  BayesClassifier() = default;

  /// Adds one training example.
  void AddExample(std::string_view label,
                  const std::vector<std::string>& features);

  /// Number of training examples seen.
  size_t example_count() const { return example_count_; }
  /// Number of distinct labels seen.
  size_t label_count() const { return labels_.size(); }
  /// Vocabulary size (distinct features).
  size_t vocabulary_size() const { return vocabulary_.size(); }

  /// Classifies a bag of features. Returns the best label with its score
  /// and the margin over the runner-up.
  Prediction Classify(const std::vector<std::string>& features) const;

  /// Classifies but reports `fallback_label` when the margin is below
  /// `min_margin` (nats). The paper's "unknown" outcome.
  std::string ClassifyWithThreshold(const std::vector<std::string>& features,
                                    double min_margin,
                                    std::string_view fallback_label) const;

 private:
  struct LabelStats {
    size_t example_count = 0;
    size_t total_word_count = 0;
    std::unordered_map<std::string, size_t> word_counts;
  };

  std::unordered_map<std::string, LabelStats> labels_;
  std::unordered_map<std::string, size_t> vocabulary_;  // feature -> df
  size_t example_count_ = 0;
};

}  // namespace webre

#endif  // WEBRE_CLASSIFY_BAYES_H_
