#include "classify/bayes.h"

#include <cmath>
#include <limits>

namespace webre {

void BayesClassifier::AddExample(std::string_view label,
                                 const std::vector<std::string>& features) {
  LabelStats& stats = labels_[std::string(label)];
  ++stats.example_count;
  ++example_count_;
  for (const std::string& f : features) {
    ++stats.word_counts[f];
    ++stats.total_word_count;
    ++vocabulary_[f];
  }
}

BayesClassifier::Prediction BayesClassifier::Classify(
    const std::vector<std::string>& features) const {
  Prediction best;
  if (labels_.empty() || example_count_ == 0) return best;

  const double vocab = static_cast<double>(vocabulary_.size());
  double best_score = -std::numeric_limits<double>::infinity();
  double second_score = -std::numeric_limits<double>::infinity();
  const std::string* best_label = nullptr;

  for (const auto& [label, stats] : labels_) {
    double score = std::log(static_cast<double>(stats.example_count) /
                            static_cast<double>(example_count_));
    const double denom =
        static_cast<double>(stats.total_word_count) + vocab + 1.0;
    for (const std::string& f : features) {
      auto it = stats.word_counts.find(f);
      const double count =
          it == stats.word_counts.end() ? 0.0 : static_cast<double>(it->second);
      score += std::log((count + 1.0) / denom);
    }
    if (score > best_score) {
      second_score = best_score;
      best_score = score;
      best_label = &label;
    } else if (score > second_score) {
      second_score = score;
    }
  }

  best.label = *best_label;
  best.log_score = best_score;
  best.margin = labels_.size() == 1
                    ? std::numeric_limits<double>::infinity()
                    : best_score - second_score;
  return best;
}

std::string BayesClassifier::ClassifyWithThreshold(
    const std::vector<std::string>& features, double min_margin,
    std::string_view fallback_label) const {
  Prediction p = Classify(features);
  if (p.label.empty() || p.margin < min_margin) {
    return std::string(fallback_label);
  }
  return p.label;
}

}  // namespace webre
