#ifndef WEBRE_MAPPING_TREE_EDIT_H_
#define WEBRE_MAPPING_TREE_EDIT_H_

#include <cstddef>

#include "xml/node.h"

namespace webre {

/// Unit costs for the three ordered-tree edit operations.
struct TreeEditCosts {
  double insert = 1.0;
  double remove = 1.0;
  double relabel = 1.0;
};

/// Ordered tree edit distance between the element trees rooted at `a`
/// and `b` (Zhang–Shasha algorithm; labels are element names, text nodes
/// are ignored). This is the algorithmic core of the paper's Document
/// Mapping Component ([11]/[13]): the cost of converting a
/// non-conforming XML document into one conforming to the derived DTD.
///
/// Complexity O(|a| |b| · min(depth,leaves)^2) time, O(|a||b|) space —
/// fine for the document sizes this pipeline produces (tens to a few
/// hundred nodes).
double TreeEditDistance(const Node& a, const Node& b,
                        const TreeEditCosts& costs = {});

}  // namespace webre

#endif  // WEBRE_MAPPING_TREE_EDIT_H_
