#include "mapping/document_mapper.h"

#include <algorithm>
#include <string>
#include <vector>

#include "mapping/tree_edit.h"
#include "xml/dtd_validator.h"

namespace webre {
namespace {

class Mapper {
 public:
  Mapper(const MajoritySchema& schema, const Dtd& dtd)
      : schema_(schema), dtd_(dtd) {}

  ConformResult Run(const Node& document) {
    ConformResult result;
    result.document = document.Clone();
    Node* root = result.document.get();
    if (schema_.empty()) {
      result.report.edit_distance = 0.0;
      result.report.conforms = ConformsToDtd(*root, dtd_);
      return result;
    }
    // The root label must match the schema root; relabel if needed.
    if (root->name() != schema_.root().label) {
      root->set_name(schema_.root().label);
      ++report_.nodes_removed;  // counted as one relabel-ish operation
    }
    MapNode(root, schema_.root());
    report_.edit_distance = TreeEditDistance(document, *root);
    report_.conforms = ConformsToDtd(*root, dtd_);
    result.report = report_;
    return result;
  }

 private:
  // Step 1: splice out children not allowed under `schema_node`,
  // repeatedly, so grandchildren get reconsidered at this level.
  void SpliceOffSchema(Node* node, const SchemaNode& schema_node) {
    bool changed = true;
    while (changed) {
      changed = false;
      for (size_t i = 0; i < node->child_count();) {
        Node* child = node->child(i);
        if (!child->is_element()) {
          ++i;
          continue;
        }
        if (schema_node.FindChild(child->name()) != nullptr) {
          ++i;
          continue;
        }
        // Off-schema: splice children up, fold text into parent.
        node->AppendVal(child->val());
        std::vector<std::unique_ptr<Node>> grandchildren =
            child->RemoveAllChildren();
        node->RemoveChild(i);
        size_t insert_at = i;
        for (auto& gc : grandchildren) {
          node->InsertChild(insert_at++, std::move(gc));
        }
        ++report_.nodes_removed;
        changed = true;
      }
    }
  }

  // Step 2: stable reorder to schema child order.
  void Reorder(Node* node, const SchemaNode& schema_node) {
    auto rank = [&](const Node& child) {
      for (size_t r = 0; r < schema_node.children.size(); ++r) {
        if (schema_node.children[r].label == child.name()) return r;
      }
      return schema_node.children.size();
    };
    // Count inversions (groups out of order) before sorting, for the
    // report.
    std::vector<std::unique_ptr<Node>> children = node->RemoveAllChildren();
    size_t last_rank = 0;
    size_t moves = 0;
    for (const auto& child : children) {
      const size_t r = rank(*child);
      if (r < last_rank) ++moves;
      last_rank = r;
    }
    report_.reorder_moves += moves;
    std::stable_sort(children.begin(), children.end(),
                     [&](const std::unique_ptr<Node>& a,
                         const std::unique_ptr<Node>& b) {
                       return rank(*a) < rank(*b);
                     });
    for (auto& child : children) node->AddChild(std::move(child));
  }

  // Step 3: merge surplus occurrences when the DTD allows only one.
  void MergeSurplus(Node* node) {
    const ElementDecl* decl = dtd_.Find(node->name());
    if (decl == nullptr || decl->pcdata_only) return;
    for (size_t i = 0; i < node->child_count(); ++i) {
      Node* first = node->child(i);
      if (!first->is_element()) continue;
      const Occurrence occ = ChildOccurrence(*decl, first->name());
      if (occ == Occurrence::kPlus || occ == Occurrence::kStar) continue;
      // Merge any later sibling with the same name into `first`.
      for (size_t j = i + 1; j < node->child_count();) {
        Node* other = node->child(j);
        if (other->is_element() && other->name() == first->name()) {
          first->AppendVal(other->val());
          std::vector<std::unique_ptr<Node>> moved =
              other->RemoveAllChildren();
          for (auto& m : moved) first->AddChild(std::move(m));
          node->RemoveChild(j);
          ++report_.nodes_removed;
        } else {
          ++j;
        }
      }
    }
  }

  // Step 4: insert required-but-missing children, in schema order.
  void InsertMissing(Node* node, const SchemaNode& schema_node) {
    const ElementDecl* decl = dtd_.Find(node->name());
    if (decl == nullptr || decl->pcdata_only) return;
    size_t insert_at = 0;
    for (const SchemaNode& schema_child : schema_node.children) {
      // Find this label among current children at/after insert_at.
      bool present = false;
      for (size_t i = 0; i < node->child_count(); ++i) {
        const Node* child = node->child(i);
        if (child->is_element() && child->name() == schema_child.label) {
          present = true;
          // Skip past the run of this label.
          size_t j = i;
          while (j < node->child_count() &&
                 node->child(j)->is_element() &&
                 node->child(j)->name() == schema_child.label) {
            ++j;
          }
          insert_at = j;
          break;
        }
      }
      if (present) continue;
      const Occurrence occ = ChildOccurrence(*decl, schema_child.label);
      if (occ == Occurrence::kOptional || occ == Occurrence::kStar) continue;
      node->InsertChild(insert_at++,
                        Node::MakeElement(schema_child.label));
      ++report_.nodes_inserted;
    }
  }

  void MapNode(Node* node, const SchemaNode& schema_node) {
    SpliceOffSchema(node, schema_node);
    Reorder(node, schema_node);
    MergeSurplus(node);
    InsertMissing(node, schema_node);
    for (size_t i = 0; i < node->child_count(); ++i) {
      Node* child = node->child(i);
      if (!child->is_element()) continue;
      const SchemaNode* schema_child =
          schema_node.FindChild(child->name());
      if (schema_child != nullptr) MapNode(child, *schema_child);
    }
  }

  // Occurrence of child `name` in `decl`'s (sequence) content model.
  static Occurrence ChildOccurrence(const ElementDecl& decl,
                                    std::string_view name) {
    for (const ContentParticle& p : decl.content.children) {
      if (p.kind == ContentParticle::Kind::kElement && p.name == name) {
        return p.occurrence;
      }
    }
    return Occurrence::kOptional;  // undeclared: treat as optional
  }

  const MajoritySchema& schema_;
  const Dtd& dtd_;
  MappingReport report_;
};

}  // namespace

ConformResult ConformToSchema(const Node& document,
                              const MajoritySchema& schema, const Dtd& dtd) {
  return Mapper(schema, dtd).Run(document);
}

}  // namespace webre
