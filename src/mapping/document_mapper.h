#ifndef WEBRE_MAPPING_DOCUMENT_MAPPER_H_
#define WEBRE_MAPPING_DOCUMENT_MAPPER_H_

#include <memory>

#include "schema/majority_schema.h"
#include "xml/dtd.h"
#include "xml/node.h"

namespace webre {

/// Report from ConformToSchema.
struct MappingReport {
  /// Elements whose label path was not in the schema: removed, with
  /// their children spliced into their place and their `val` text folded
  /// into the parent (no information loss).
  size_t nodes_removed = 0;
  /// Required schema children synthesized as empty elements.
  size_t nodes_inserted = 0;
  /// Sibling groups reordered to match the schema's child order.
  size_t reorder_moves = 0;
  /// Tree edit distance between the input document and the conformed
  /// output (a cost measure of the mapping).
  double edit_distance = 0.0;
  /// Whether the output validates against the DTD.
  bool conforms = false;
};

/// The Document Mapping Component (§5, [11]/[13]): converts an XML
/// document that does not conform to the discovered majority schema into
/// one that does, using tree-edit operations:
///
///  1. *remove*: elements off the schema are spliced out (their children
///     move up, their `val` joins the parent's `val`), repeated to a
///     fixed point;
///  2. *reorder*: children are stably reordered to the schema's child
///     order (which the ordering rule made the majority order);
///  3. *merge*: when the DTD permits only a single occurrence of a
///     child, surplus occurrences are merged into the first (vals
///     concatenated, children appended);
///  4. *insert*: children the DTD requires (occurrence `one`/`+`) that
///     are absent are synthesized as empty elements.
///
/// The paper's observation that this "is only reasonable by using a
/// majority schema" is measurable here: against a Data Guide or
/// lower-bound schema the edit distance explodes (see bench_mapping).
struct ConformResult {
  std::unique_ptr<Node> document;
  MappingReport report;
};

ConformResult ConformToSchema(const Node& document,
                              const MajoritySchema& schema, const Dtd& dtd);

}  // namespace webre

#endif  // WEBRE_MAPPING_DOCUMENT_MAPPER_H_
