#include "mapping/edit_script.h"

#include <algorithm>
#include <string>
#include <vector>

namespace webre {

std::string EditOp::ToString() const {
  switch (kind) {
    case Kind::kRelabel:
      return "relabel " + from_label + " -> " + to_label;
    case Kind::kDelete:
      return "delete " + from_label;
    case Kind::kInsert:
      return "insert " + to_label;
  }
  return "";
}

size_t EditScript::relabels() const {
  size_t count = 0;
  for (const EditOp& op : ops) {
    if (op.kind == EditOp::Kind::kRelabel) ++count;
  }
  return count;
}

size_t EditScript::deletions() const {
  size_t count = 0;
  for (const EditOp& op : ops) {
    if (op.kind == EditOp::Kind::kDelete) ++count;
  }
  return count;
}

size_t EditScript::insertions() const {
  size_t count = 0;
  for (const EditOp& op : ops) {
    if (op.kind == EditOp::Kind::kInsert) ++count;
  }
  return count;
}

namespace {

// Post-order flattening with node pointers (text nodes skipped).
struct FlatTree {
  std::vector<const Node*> nodes;  // 1-based
  std::vector<int> lld;            // leftmost leaf descendant, 1-based
  std::vector<int> keyroots;

  int size() const { return static_cast<int>(nodes.size()) - 1; }
  std::string_view label(int i) const {
    return nodes[static_cast<size_t>(i)]->name();
  }
};

int Flatten(const Node& node, FlatTree& out) {
  int first_leaf = -1;
  for (size_t i = 0; i < node.child_count(); ++i) {
    const Node* child = node.child(i);
    if (!child->is_element()) continue;
    int child_lld = Flatten(*child, out);
    if (first_leaf < 0) first_leaf = child_lld;
  }
  out.nodes.push_back(&node);
  const int index = static_cast<int>(out.nodes.size()) - 1;
  out.lld.push_back(first_leaf < 0 ? index : first_leaf);
  return out.lld.back();
}

FlatTree MakeFlat(const Node& root) {
  FlatTree flat;
  flat.nodes.push_back(nullptr);
  flat.lld.push_back(0);
  Flatten(root, flat);
  const int n = flat.size();
  std::vector<bool> seen(static_cast<size_t>(n) + 1, false);
  for (int i = n; i >= 1; --i) {
    const int l = flat.lld[static_cast<size_t>(i)];
    if (!seen[static_cast<size_t>(l)]) {
      flat.keyroots.push_back(i);
      seen[static_cast<size_t>(l)] = true;
    }
  }
  std::sort(flat.keyroots.begin(), flat.keyroots.end());
  return flat;
}

using Matrix = std::vector<std::vector<double>>;

class ScriptBuilder {
 public:
  ScriptBuilder(const FlatTree& a, const FlatTree& b,
                const TreeEditCosts& costs)
      : a_(a), b_(b), costs_(costs) {}

  EditScript Build() {
    ComputeTreeDistances();
    EditScript script;
    if (a_.size() > 0 && b_.size() > 0) {
      std::vector<bool> a_mapped(static_cast<size_t>(a_.size()) + 1, false);
      std::vector<bool> b_mapped(static_cast<size_t>(b_.size()) + 1, false);
      Backtrace(a_.size(), b_.size(), a_mapped, b_mapped, script);
      // Anything not touched by the mapping is deleted/inserted.
      for (int i = 1; i <= a_.size(); ++i) {
        if (!a_mapped[static_cast<size_t>(i)]) AddDelete(i, script);
      }
      for (int j = 1; j <= b_.size(); ++j) {
        if (!b_mapped[static_cast<size_t>(j)]) AddInsert(j, script);
      }
    } else {
      for (int i = 1; i <= a_.size(); ++i) AddDelete(i, script);
      for (int j = 1; j <= b_.size(); ++j) AddInsert(j, script);
    }
    script.cost = 0.0;
    for (const EditOp& op : script.ops) {
      switch (op.kind) {
        case EditOp::Kind::kRelabel:
          script.cost += costs_.relabel;
          break;
        case EditOp::Kind::kDelete:
          script.cost += costs_.remove;
          break;
        case EditOp::Kind::kInsert:
          script.cost += costs_.insert;
          break;
      }
    }
    return script;
  }

 private:
  double Rename(int i, int j) const {
    return a_.label(i) == b_.label(j) ? 0.0 : costs_.relabel;
  }

  // Forest-distance table for the subtree pair rooted at (i, j); cell
  // [x][y] covers source forest l(i)..l(i)+x-1 and target forest
  // l(j)..l(j)+y-1.
  Matrix ForestTable(int i, int j) const {
    const int li = a_.lld[static_cast<size_t>(i)];
    const int lj = b_.lld[static_cast<size_t>(j)];
    const int ni = i - li + 1;
    const int nj = j - lj + 1;
    Matrix fd(static_cast<size_t>(ni) + 1,
              std::vector<double>(static_cast<size_t>(nj) + 1, 0.0));
    for (int x = 1; x <= ni; ++x) {
      fd[static_cast<size_t>(x)][0] =
          fd[static_cast<size_t>(x - 1)][0] + costs_.remove;
    }
    for (int y = 1; y <= nj; ++y) {
      fd[0][static_cast<size_t>(y)] =
          fd[0][static_cast<size_t>(y - 1)] + costs_.insert;
    }
    for (int x = 1; x <= ni; ++x) {
      const int ii = li + x - 1;
      for (int y = 1; y <= nj; ++y) {
        const int jj = lj + y - 1;
        const double del =
            fd[static_cast<size_t>(x - 1)][static_cast<size_t>(y)] +
            costs_.remove;
        const double ins =
            fd[static_cast<size_t>(x)][static_cast<size_t>(y - 1)] +
            costs_.insert;
        double sub;
        if (a_.lld[static_cast<size_t>(ii)] == li &&
            b_.lld[static_cast<size_t>(jj)] == lj) {
          sub = fd[static_cast<size_t>(x - 1)][static_cast<size_t>(y - 1)] +
                Rename(ii, jj);
        } else {
          const int xi = a_.lld[static_cast<size_t>(ii)] - li;
          const int yj = b_.lld[static_cast<size_t>(jj)] - lj;
          sub = fd[static_cast<size_t>(xi)][static_cast<size_t>(yj)] +
                treedist_[static_cast<size_t>(ii)][static_cast<size_t>(jj)];
        }
        fd[static_cast<size_t>(x)][static_cast<size_t>(y)] =
            std::min({del, ins, sub});
      }
    }
    return fd;
  }

  void ComputeTreeDistances() {
    treedist_.assign(static_cast<size_t>(a_.size()) + 1,
                     std::vector<double>(static_cast<size_t>(b_.size()) + 1,
                                         0.0));
    for (int ik : a_.keyroots) {
      for (int jk : b_.keyroots) {
        const int li = a_.lld[static_cast<size_t>(ik)];
        const int lj = b_.lld[static_cast<size_t>(jk)];
        Matrix fd = ForestTable(ik, jk);
        // Record tree distances for all subtree pairs completed in this
        // table (both forests are whole subtrees).
        for (int x = 1; x <= ik - li + 1; ++x) {
          const int ii = li + x - 1;
          if (a_.lld[static_cast<size_t>(ii)] != li) continue;
          for (int y = 1; y <= jk - lj + 1; ++y) {
            const int jj = lj + y - 1;
            if (b_.lld[static_cast<size_t>(jj)] != lj) continue;
            treedist_[static_cast<size_t>(ii)][static_cast<size_t>(jj)] =
                fd[static_cast<size_t>(x)][static_cast<size_t>(y)];
          }
        }
      }
    }
  }

  void AddDelete(int i, EditScript& script) const {
    EditOp op;
    op.kind = EditOp::Kind::kDelete;
    op.from_label = a_.label(i);
    op.source = a_.nodes[static_cast<size_t>(i)];
    script.ops.push_back(std::move(op));
  }

  void AddInsert(int j, EditScript& script) const {
    EditOp op;
    op.kind = EditOp::Kind::kInsert;
    op.to_label = b_.label(j);
    op.target = b_.nodes[static_cast<size_t>(j)];
    script.ops.push_back(std::move(op));
  }

  void AddPair(int i, int j, std::vector<bool>& a_mapped,
               std::vector<bool>& b_mapped, EditScript& script) const {
    a_mapped[static_cast<size_t>(i)] = true;
    b_mapped[static_cast<size_t>(j)] = true;
    if (a_.label(i) == b_.label(j)) return;  // exact match: no op
    EditOp op;
    op.kind = EditOp::Kind::kRelabel;
    op.from_label = a_.label(i);
    op.to_label = b_.label(j);
    op.source = a_.nodes[static_cast<size_t>(i)];
    op.target = b_.nodes[static_cast<size_t>(j)];
    script.ops.push_back(std::move(op));
  }

  // Recovers the optimal mapping for the subtree pair (i, j) by walking
  // its forest table back from the bottom-right corner.
  void Backtrace(int i, int j, std::vector<bool>& a_mapped,
                 std::vector<bool>& b_mapped, EditScript& script) const {
    const int li = a_.lld[static_cast<size_t>(i)];
    const int lj = b_.lld[static_cast<size_t>(j)];
    const Matrix fd = ForestTable(i, j);
    int x = i - li + 1;
    int y = j - lj + 1;
    constexpr double kEps = 1e-9;
    while (x > 0 || y > 0) {
      const double here =
          fd[static_cast<size_t>(x)][static_cast<size_t>(y)];
      if (x > 0 &&
          std::abs(fd[static_cast<size_t>(x - 1)][static_cast<size_t>(y)] +
                   costs_.remove - here) < kEps) {
        // Deletion is recorded later from the unmapped sweep; just move.
        --x;
        continue;
      }
      if (y > 0 &&
          std::abs(fd[static_cast<size_t>(x)][static_cast<size_t>(y - 1)] +
                   costs_.insert - here) < kEps) {
        --y;
        continue;
      }
      const int ii = li + x - 1;
      const int jj = lj + y - 1;
      if (a_.lld[static_cast<size_t>(ii)] == li &&
          b_.lld[static_cast<size_t>(jj)] == lj) {
        AddPair(ii, jj, a_mapped, b_mapped, script);
        --x;
        --y;
      } else {
        // Whole-subtree substitution: recurse, then skip both subtrees.
        Backtrace(ii, jj, a_mapped, b_mapped, script);
        x = a_.lld[static_cast<size_t>(ii)] - li;
        y = b_.lld[static_cast<size_t>(jj)] - lj;
      }
    }
  }

  const FlatTree& a_;
  const FlatTree& b_;
  TreeEditCosts costs_;
  Matrix treedist_;
};

}  // namespace

EditScript ComputeEditScript(const Node& source, const Node& target,
                             const TreeEditCosts& costs) {
  const FlatTree a = MakeFlat(source);
  const FlatTree b = MakeFlat(target);
  return ScriptBuilder(a, b, costs).Build();
}

}  // namespace webre
