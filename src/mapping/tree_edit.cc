#include "mapping/tree_edit.h"

#include <algorithm>
#include <string>
#include <vector>

namespace webre {
namespace {

// Post-order flattening of an element tree (text nodes skipped).
struct FlatTree {
  std::vector<std::string> labels;  // 1-based: labels[1..n]
  std::vector<int> lld;             // leftmost leaf descendant, 1-based
  std::vector<int> keyroots;        // ascending

  int size() const { return static_cast<int>(labels.size()) - 1; }
};

int Flatten(const Node& node, FlatTree& out) {
  int first_leaf = -1;
  for (size_t i = 0; i < node.child_count(); ++i) {
    const Node* child = node.child(i);
    if (!child->is_element()) continue;
    int child_lld = Flatten(*child, out);
    if (first_leaf < 0) first_leaf = child_lld;
  }
  out.labels.emplace_back(node.name());
  const int index = static_cast<int>(out.labels.size()) - 1;
  out.lld.push_back(first_leaf < 0 ? index : first_leaf);
  return out.lld.back();
}

FlatTree MakeFlat(const Node& root) {
  FlatTree flat;
  flat.labels.emplace_back();  // 1-based padding
  flat.lld.push_back(0);
  Flatten(root, flat);
  // Keyroots: nodes i such that no j > i has lld(j) == lld(i).
  const int n = flat.size();
  std::vector<bool> seen(static_cast<size_t>(n) + 1, false);
  for (int i = n; i >= 1; --i) {
    const int l = flat.lld[static_cast<size_t>(i)];
    if (!seen[static_cast<size_t>(l)]) {
      flat.keyroots.push_back(i);
      seen[static_cast<size_t>(l)] = true;
    }
  }
  std::sort(flat.keyroots.begin(), flat.keyroots.end());
  return flat;
}

}  // namespace

double TreeEditDistance(const Node& a, const Node& b,
                        const TreeEditCosts& costs) {
  const FlatTree ta = MakeFlat(a);
  const FlatTree tb = MakeFlat(b);
  const int n = ta.size();
  const int m = tb.size();
  if (n == 0) return m * costs.insert;
  if (m == 0) return n * costs.remove;

  std::vector<std::vector<double>> treedist(
      static_cast<size_t>(n) + 1,
      std::vector<double>(static_cast<size_t>(m) + 1, 0.0));

  // Forest-distance scratch, sized for the largest subproblem.
  std::vector<std::vector<double>> fd(
      static_cast<size_t>(n) + 2,
      std::vector<double>(static_cast<size_t>(m) + 2, 0.0));

  for (int ik : ta.keyroots) {
    for (int jk : tb.keyroots) {
      const int li = ta.lld[static_cast<size_t>(ik)];
      const int lj = tb.lld[static_cast<size_t>(jk)];

      fd[0][0] = 0.0;
      // Using row/col index shifted so that index x corresponds to
      // forest l..(l-1+x).
      const int ni = ik - li + 1;
      const int nj = jk - lj + 1;
      for (int x = 1; x <= ni; ++x) {
        fd[static_cast<size_t>(x)][0] =
            fd[static_cast<size_t>(x - 1)][0] + costs.remove;
      }
      for (int y = 1; y <= nj; ++y) {
        fd[0][static_cast<size_t>(y)] =
            fd[0][static_cast<size_t>(y - 1)] + costs.insert;
      }
      for (int x = 1; x <= ni; ++x) {
        const int i = li + x - 1;
        for (int y = 1; y <= nj; ++y) {
          const int j = lj + y - 1;
          const double del =
              fd[static_cast<size_t>(x - 1)][static_cast<size_t>(y)] +
              costs.remove;
          const double ins =
              fd[static_cast<size_t>(x)][static_cast<size_t>(y - 1)] +
              costs.insert;
          if (ta.lld[static_cast<size_t>(i)] == li &&
              tb.lld[static_cast<size_t>(j)] == lj) {
            const double relabel_cost =
                ta.labels[static_cast<size_t>(i)] ==
                        tb.labels[static_cast<size_t>(j)]
                    ? 0.0
                    : costs.relabel;
            const double sub =
                fd[static_cast<size_t>(x - 1)][static_cast<size_t>(y - 1)] +
                relabel_cost;
            fd[static_cast<size_t>(x)][static_cast<size_t>(y)] =
                std::min({del, ins, sub});
            treedist[static_cast<size_t>(i)][static_cast<size_t>(j)] =
                fd[static_cast<size_t>(x)][static_cast<size_t>(y)];
          } else {
            const int xi = ta.lld[static_cast<size_t>(i)] - li;  // forest prefix before subtree i
            const int yj = tb.lld[static_cast<size_t>(j)] - lj;
            const double sub =
                fd[static_cast<size_t>(xi)][static_cast<size_t>(yj)] +
                treedist[static_cast<size_t>(i)][static_cast<size_t>(j)];
            fd[static_cast<size_t>(x)][static_cast<size_t>(y)] =
                std::min({del, ins, sub});
          }
        }
      }
    }
  }
  return treedist[static_cast<size_t>(n)][static_cast<size_t>(m)];
}

}  // namespace webre
