#ifndef WEBRE_MAPPING_EDIT_SCRIPT_H_
#define WEBRE_MAPPING_EDIT_SCRIPT_H_

#include <string>
#include <vector>

#include "mapping/tree_edit.h"
#include "xml/node.h"

namespace webre {

/// One ordered-tree edit operation.
struct EditOp {
  enum class Kind {
    kRelabel,  ///< change source node's label to `to_label`
    kDelete,   ///< delete source node (children move to its parent)
    kInsert,   ///< insert a node labelled `to_label` (from the target)
  };

  Kind kind = Kind::kRelabel;
  /// Label of the source node (kRelabel/kDelete) — empty for kInsert.
  std::string from_label;
  /// Label in the target tree (kRelabel/kInsert) — empty for kDelete.
  std::string to_label;
  /// The affected source node (kRelabel/kDelete); null for kInsert.
  const Node* source = nullptr;
  /// The corresponding target node (kRelabel/kInsert); null for kDelete.
  const Node* target = nullptr;

  std::string ToString() const;
};

/// A full edit script turning the source element tree into the target.
struct EditScript {
  std::vector<EditOp> ops;
  /// Total cost under the costs used to compute it; equals
  /// TreeEditDistance(source, target, costs).
  double cost = 0.0;

  size_t relabels() const;
  size_t deletions() const;
  size_t insertions() const;
};

/// Computes an optimal ordered-tree edit script from `source` to
/// `target` (labels are element names; text nodes ignored). This is the
/// constructive counterpart of TreeEditDistance: the Document Mapping
/// Component's "tree-edit distance algorithm" ([13]) not only prices a
/// conversion but says which nodes to relabel, delete and insert.
///
/// Implementation: Zhang–Shasha forest distances with full memoization
/// of per-keyroot-pair forest tables, then a backtrace. O(|a||b|·
/// min(depth,leaves)²) time like the distance itself; memory holds the
/// forest table of every keyroot pair (fine for document-sized trees).
EditScript ComputeEditScript(const Node& source, const Node& target,
                             const TreeEditCosts& costs = {});

}  // namespace webre

#endif  // WEBRE_MAPPING_EDIT_SCRIPT_H_
