#include "obs/metrics.h"

#include <bit>
#include <chrono>

namespace webre {
namespace obs {

double MonotonicSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

size_t Counter::ShardIndex() {
  static std::atomic<size_t> next{0};
  thread_local const size_t id =
      next.fetch_add(1, std::memory_order_relaxed) & (kShards - 1);
  return id;
}

void Histogram::Record(uint64_t v) {
  // bucket[0] holds zeros; value v > 0 lands in bucket bit_width(v), so
  // bucket[i] spans [2^(i-1), 2^i - 1]. bit_width(uint64) <= 64 would
  // overflow kBuckets only for v with the top bit set; clamp.
  const size_t bucket = v == 0 ? 0 : std::min<size_t>(std::bit_width(v),
                                                      kBuckets - 1);
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
  uint64_t current = min_.load(std::memory_order_relaxed);
  while (v < current &&
         !min_.compare_exchange_weak(current, v, std::memory_order_relaxed)) {
  }
  current = max_.load(std::memory_order_relaxed);
  while (v > current &&
         !max_.compare_exchange_weak(current, v, std::memory_order_relaxed)) {
  }
}

void Histogram::Merge(const HistogramSnapshot& other) {
  if (other.count == 0) return;
  const size_t n = std::min<size_t>(kBuckets, other.buckets.size());
  for (size_t i = 0; i < n; ++i) {
    if (other.buckets[i] != 0) {
      buckets_[i].fetch_add(other.buckets[i], std::memory_order_relaxed);
    }
  }
  count_.fetch_add(other.count, std::memory_order_relaxed);
  sum_.fetch_add(other.sum, std::memory_order_relaxed);
  uint64_t current = min_.load(std::memory_order_relaxed);
  while (other.min < current &&
         !min_.compare_exchange_weak(current, other.min,
                                     std::memory_order_relaxed)) {
  }
  current = max_.load(std::memory_order_relaxed);
  while (other.max > current &&
         !max_.compare_exchange_weak(current, other.max,
                                     std::memory_order_relaxed)) {
  }
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snapshot;
  snapshot.count = count_.load(std::memory_order_relaxed);
  snapshot.sum = sum_.load(std::memory_order_relaxed);
  snapshot.min =
      snapshot.count == 0 ? 0 : min_.load(std::memory_order_relaxed);
  snapshot.max = max_.load(std::memory_order_relaxed);
  snapshot.buckets.resize(kBuckets);
  for (size_t i = 0; i < kBuckets; ++i) {
    snapshot.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return snapshot;
}

void Histogram::Reset() {
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(~uint64_t{0}, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

}  // namespace obs
}  // namespace webre
