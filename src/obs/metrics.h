#ifndef WEBRE_OBS_METRICS_H_
#define WEBRE_OBS_METRICS_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace webre {
namespace obs {

/// Monotonic wall clock in seconds (steady_clock). Every timestamp in the
/// observability layer — stage timers, trace spans — comes from this one
/// source so durations computed across modules share a timebase.
double MonotonicSeconds();

/// A monotonically increasing counter, safe for concurrent writers.
///
/// The hot path is lock-free: writers pick one of kShards cache-line-
/// padded atomic slots via a cheap per-thread round-robin id and do a
/// relaxed fetch_add, so concurrent workers do not bounce one cache line
/// between cores. Readers (value/snapshot time) sum the shards; the sum
/// is exact once writers have quiesced — which is the pipeline's report
/// point, after all worker tasks joined.
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  /// Adds `n`. Lock-free, safe from any thread.
  void Add(uint64_t n) {
    slots_[ShardIndex()].value.fetch_add(n, std::memory_order_relaxed);
  }

  void Increment() { Add(1); }

  /// Sum over all shards. Exact when no writer is concurrently active.
  uint64_t value() const {
    uint64_t sum = 0;
    for (const Slot& slot : slots_) {
      sum += slot.value.load(std::memory_order_relaxed);
    }
    return sum;
  }

  /// Resets every shard to zero (quiesced writers only).
  void Reset() {
    for (Slot& slot : slots_) slot.value.store(0, std::memory_order_relaxed);
  }

 private:
  static constexpr size_t kShards = 16;  // power of two

  struct alignas(64) Slot {
    std::atomic<uint64_t> value{0};
  };

  /// Per-thread shard id, assigned round-robin on a thread's first use of
  /// any Counter. Stable for the thread's lifetime, so each pipeline
  /// worker keeps hitting its own cache line.
  static size_t ShardIndex();

  Slot slots_[kShards];
};

/// Tracks the maximum of all recorded values (e.g. the largest resource-
/// budget consumption any single document reached). Lock-free CAS max.
class MaxGauge {
 public:
  MaxGauge() = default;
  MaxGauge(const MaxGauge&) = delete;
  MaxGauge& operator=(const MaxGauge&) = delete;

  void Record(uint64_t v) {
    uint64_t current = max_.load(std::memory_order_relaxed);
    while (v > current &&
           !max_.compare_exchange_weak(current, v,
                                       std::memory_order_relaxed)) {
    }
  }

  uint64_t value() const { return max_.load(std::memory_order_relaxed); }
  void Reset() { max_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> max_{0};
};

/// Point-in-time view of a Histogram.
struct HistogramSnapshot {
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t min = 0;  ///< 0 when count == 0.
  uint64_t max = 0;
  /// bucket[i] counts values in [2^(i-1), 2^i - 1]; bucket[0] counts 0.
  std::vector<uint64_t> buckets;

  double mean() const {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }
};

/// A log2-bucketed histogram of non-negative integers (typically
/// microseconds), safe for concurrent writers. Each bucket is one relaxed
/// atomic increment; min/max are CAS loops. 64 buckets cover the full
/// uint64 range, so Record never clips.
class Histogram {
 public:
  Histogram() = default;
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Record(uint64_t v);

  /// Folds a snapshot of another histogram in (bucket-wise sums, CAS
  /// min/max) — how a component-local histogram (e.g. the repository's
  /// per-query latency) lands in the batch metrics.
  void Merge(const HistogramSnapshot& other);

  /// Merged view. Exact when no writer is concurrently active.
  HistogramSnapshot Snapshot() const;

  void Reset();

 private:
  static constexpr size_t kBuckets = 64;

  std::atomic<uint64_t> buckets_[kBuckets] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> min_{~uint64_t{0}};
  std::atomic<uint64_t> max_{0};
};

/// Snapshot of a query-serving component's counters (XmlRepository
/// exposes one; PipelineMetrics::MergeQueryStats folds it into the batch
/// metrics as the query.* counter group and the query_us histogram).
struct QueryStatsView {
  uint64_t queries = 0;         ///< Query() calls answered
  uint64_t index_hits = 0;      ///< answered fully from the summary
  uint64_t prefix_hits = 0;     ///< summary-seeded frontier + tree suffix
  uint64_t fallback_walks = 0;  ///< documents evaluated by full walk
  uint64_t flat_scans = 0;      ///< documents evaluated via FlatDoc
  uint64_t shard_tasks = 0;     ///< per-shard/per-chunk eval tasks run
  uint64_t matches = 0;         ///< matches returned across all queries
  /// Bytes of value text the predicate engine inspected: full lengths
  /// of candidate slices (or whole pools for sweeps), charged
  /// independently of early exits — deterministic across shard/thread
  /// counts and SIMD levels. Pointer-tree suffix walks (plans 2–3 in
  /// --no-flat mode) are not instrumented.
  uint64_t predicate_bytes_scanned = 0;
  /// Plan classification, exactly one per query (they sum to
  /// `queries`): summary-only, summary + >= 1 full-pool sweep,
  /// summary-seeded suffix evaluation, sharded scan.
  uint64_t plan_summary = 0;
  uint64_t plan_sweep = 0;
  uint64_t plan_seeded = 0;
  uint64_t plan_scan = 0;
  uint64_t flat_bytes = 0;      ///< frozen FlatDoc block bytes stored
  HistogramSnapshot eval_us;    ///< per-query latency, microseconds
};

/// Snapshot of the network serving front end's counters (serve's
/// Server exposes one; PipelineMetrics::MergeServeStats folds it into
/// the batch metrics as the serve.* counter group). The request_us
/// histogram is served by the server's own stats endpoint and is not
/// merged into --metrics-json (query latency is already covered by
/// query_us).
struct ServeStatsView {
  uint64_t accepted_connections = 0;  ///< connections accepted since start
  uint64_t active_connections = 0;    ///< currently open connections
  uint64_t requests = 0;              ///< request frames/lines decoded
  uint64_t shed_requests = 0;         ///< shed by admission control
  uint64_t errors = 0;                ///< non-ok responses besides sheds
  uint64_t cache_hits = 0;            ///< query answers served from cache
  uint64_t cache_misses = 0;          ///< query answers evaluated fresh
  uint64_t cache_evictions = 0;       ///< entries evicted by the byte cap
  uint64_t max_queue_depth = 0;       ///< in-flight high-water mark
  uint64_t loops = 0;                 ///< event-loop (reactor) threads
  uint64_t wakeups = 0;               ///< eventfd rings (empty→non-empty)
  uint64_t wakeups_coalesced = 0;     ///< rings suppressed (ring non-empty)
  uint64_t handoffs = 0;              ///< accepted fds handed across loops
  HistogramSnapshot request_us;       ///< per-request latency, microseconds
};

/// Snapshot of the durable storage layer's counters (storage's
/// DurableRepository exposes one; PipelineMetrics::MergeStorageStats
/// folds it into the batch metrics as the storage.* counter group).
struct StorageStatsView {
  uint64_t wal_appends = 0;          ///< records appended across shards
  uint64_t wal_replayed = 0;         ///< records admitted during Open
  uint64_t wal_truncated_bytes = 0;  ///< torn/corrupt bytes dropped at Open
  uint64_t snapshot_bytes = 0;       ///< bytes of the snapshot served/written
  uint64_t mmap_hits = 0;            ///< documents served as mmap views
};

/// RAII wall-time meter for one stage execution: counts one call and the
/// elapsed nanoseconds into the given Counters on destruction (or on
/// Stop(), whichever comes first). The begin/end timestamps are exposed
/// so callers can also emit a trace span for the same interval.
class StageTimer {
 public:
  /// Either counter may be null (that aspect is then not recorded).
  StageTimer(Counter* calls, Counter* wall_ns)
      : calls_(calls), wall_ns_(wall_ns), begin_s_(MonotonicSeconds()) {}

  StageTimer(const StageTimer&) = delete;
  StageTimer& operator=(const StageTimer&) = delete;

  ~StageTimer() { Stop(); }

  /// Ends the measured interval early; idempotent.
  void Stop() {
    if (stopped_) return;
    stopped_ = true;
    end_s_ = MonotonicSeconds();
    if (calls_ != nullptr) calls_->Increment();
    if (wall_ns_ != nullptr) {
      wall_ns_->Add(static_cast<uint64_t>((end_s_ - begin_s_) * 1e9));
    }
  }

  double begin_seconds() const { return begin_s_; }
  /// Meaningful after Stop().
  double end_seconds() const { return end_s_; }

 private:
  Counter* calls_;
  Counter* wall_ns_;
  double begin_s_;
  double end_s_ = 0.0;
  bool stopped_ = false;
};

}  // namespace obs
}  // namespace webre

#endif  // WEBRE_OBS_METRICS_H_
