#ifndef WEBRE_OBS_STAGE_H_
#define WEBRE_OBS_STAGE_H_

#include <cstddef>

namespace webre {
namespace obs {

/// The fixed stage sequence of the conversion pipeline, in execution
/// order (DESIGN.md §10). Per-document stages (kParse..kMap minus
/// kDiscover) run once per input document; kDiscover runs once per batch.
enum class PipelineStage {
  kParse = 0,     ///< HTML lexing + lenient parsing into the tree model.
  kTidy,          ///< HTML cleansing (§2.4).
  kTokenize,      ///< Tokenization rule (§2.3.1).
  kInstance,      ///< Concept instance rule (§2.3.1).
  kGroup,         ///< Grouping rule (§2.3.2).
  kConsolidate,   ///< Consolidation rule (§2.3.2).
  kExtract,       ///< Label-path extraction (§3.2).
  kDiscover,      ///< Frequent-path fold + DTD derivation (batch-level).
  kValidate,      ///< DTD conformance check.
  kMap,           ///< Schema-guided document mapping.
};

inline constexpr size_t kPipelineStageCount = 10;

/// Stable lower_snake name for metrics/trace output ("parse", "tidy",
/// "tokenize", "instance", "group", "consolidate", "extract", "discover",
/// "validate", "map").
const char* PipelineStageName(PipelineStage stage);

}  // namespace obs
}  // namespace webre

#endif  // WEBRE_OBS_STAGE_H_
