#include "obs/trace.h"

#include <algorithm>
#include <cstdio>

#include "obs/metrics.h"

namespace webre {
namespace obs {
namespace {

// Minimal JSON string escaping (names and categories are ASCII
// identifiers in practice, but hostile input must not corrupt the file).
std::string EscapeJson(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace

TraceCollector::TraceCollector() : origin_s_(MonotonicSeconds()) {}

size_t TraceCollector::ThisThreadLaneIndexLocked() {
  const std::thread::id self = std::this_thread::get_id();
  for (size_t i = 0; i < lanes_.size(); ++i) {
    if (lanes_[i]->thread == self) return i;
  }
  lanes_.push_back(std::make_unique<Lane>());
  lanes_.back()->thread = self;
  return lanes_.size() - 1;
}

void TraceCollector::AddSpan(const std::string& name,
                             const std::string& category,
                             double begin_seconds, double end_seconds,
                             size_t doc_index) {
  // Quantize both endpoints to integer microseconds from the origin and
  // derive the duration from the quantized pair. Rounding ts and dur
  // independently can push a child span's end 1 us past its parent's,
  // which renders as a (spurious) overlap in trace viewers.
  const int64_t begin_us =
      static_cast<int64_t>((begin_seconds - origin_s_) * 1e6);
  const int64_t end_us =
      static_cast<int64_t>((end_seconds - origin_s_) * 1e6);
  TraceEvent event;
  event.name = name;
  event.category = category;
  event.timestamp_us = begin_us;
  event.duration_us = end_us > begin_us ? end_us - begin_us : 0;
  event.doc_index = doc_index;

  std::lock_guard<std::mutex> lock(mutex_);
  const size_t lane_index = ThisThreadLaneIndexLocked();
  event.lane = static_cast<uint32_t>(lane_index);
  lanes_[lane_index]->events.push_back(std::move(event));
}

size_t TraceCollector::event_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  size_t count = 0;
  for (const auto& lane : lanes_) count += lane->events.size();
  return count;
}

size_t TraceCollector::lane_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return lanes_.size();
}

std::vector<TraceEvent> TraceCollector::Events() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<TraceEvent> all;
  for (const auto& lane : lanes_) {
    all.insert(all.end(), lane->events.begin(), lane->events.end());
  }
  return all;
}

std::string TraceCollector::ToJson() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out = "[";
  bool first = true;
  char buf[160];
  // Metadata records name each lane so Perfetto shows "worker N" tracks.
  for (size_t i = 0; i < lanes_.size(); ++i) {
    std::snprintf(buf, sizeof(buf),
                  "%s{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,"
                  "\"tid\":%zu,\"args\":{\"name\":\"worker %zu\"}}",
                  first ? "" : ",\n ", i, i);
    out += buf;
    first = false;
  }
  for (const auto& lane : lanes_) {
    for (const TraceEvent& event : lane->events) {
      std::snprintf(buf, sizeof(buf),
                    "%s{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\","
                    "\"ts\":%lld,\"dur\":%lld,\"pid\":1,\"tid\":%u",
                    first ? "" : ",\n ",
                    EscapeJson(event.name).c_str(),
                    EscapeJson(event.category).c_str(),
                    static_cast<long long>(event.timestamp_us),
                    static_cast<long long>(event.duration_us), event.lane);
      out += buf;
      if (event.doc_index != static_cast<size_t>(-1)) {
        std::snprintf(buf, sizeof(buf), ",\"args\":{\"doc\":%zu}",
                      event.doc_index);
        out += buf;
      }
      out += "}";
      first = false;
    }
  }
  out += "]\n";
  return out;
}

}  // namespace obs
}  // namespace webre
