#ifndef WEBRE_OBS_TRACE_H_
#define WEBRE_OBS_TRACE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace webre {
namespace obs {

/// One completed span ("X" phase event in the Chrome trace_event format):
/// a named interval on one lane with microsecond timestamps relative to
/// the collector's origin.
struct TraceEvent {
  /// Event name (e.g. "tokenize", "document"). Borrowed static string or
  /// owned? Owned: names may be composed (e.g. per-concept lanes later).
  std::string name;
  /// Category string ("stage", "doc", "batch"); groups events in the UI.
  std::string category;
  /// Microseconds since the collector's origin.
  int64_t timestamp_us = 0;
  int64_t duration_us = 0;
  /// Lane (rendered as a thread track): 0-based, one per OS thread that
  /// recorded spans, in order of first use.
  uint32_t lane = 0;
  /// Index of the document the span belongs to; SIZE_MAX for batch-level
  /// spans (rendered without a "doc" arg).
  size_t doc_index = static_cast<size_t>(-1);
};

/// Collects spans from concurrent threads and exports them as a Chrome
/// trace_event JSON file (the "JSON Array Format"), loadable in
/// chrome://tracing and Perfetto.
///
/// Each OS thread gets its own lane: pipeline workers therefore appear
/// as parallel tracks, one span per stage per document. Recording takes
/// one short mutex hold per call — spans are emitted a handful of times
/// per document (not per node), so the lock is far off the hot path; the
/// per-node accounting lives in the lock-free Counters instead.
class TraceCollector {
 public:
  TraceCollector();
  TraceCollector(const TraceCollector&) = delete;
  TraceCollector& operator=(const TraceCollector&) = delete;

  /// Records one completed span [begin_seconds, end_seconds] (timestamps
  /// from MonotonicSeconds) on the calling thread's lane.
  void AddSpan(const std::string& name, const std::string& category,
               double begin_seconds, double end_seconds,
               size_t doc_index = static_cast<size_t>(-1));

  /// Number of spans recorded so far.
  size_t event_count() const;

  /// Number of distinct lanes (threads) that recorded spans.
  size_t lane_count() const;

  /// All events, lane-major then chronological. Call after writers
  /// quiesced.
  std::vector<TraceEvent> Events() const;

  /// Serializes every span as a Chrome trace_event JSON array:
  ///   [{"name":"parse","cat":"stage","ph":"X","ts":12,"dur":34,
  ///     "pid":1,"tid":0,"args":{"doc":5}}, ...]
  /// plus one metadata record per lane naming the thread track. Call
  /// after writers quiesced.
  std::string ToJson() const;

  /// The MonotonicSeconds() instant all timestamps are relative to.
  double origin_seconds() const { return origin_s_; }

 private:
  struct Lane {
    std::thread::id thread;
    std::vector<TraceEvent> events;
  };

  /// Index of the calling thread's lane, created on first use. Caller
  /// holds `mutex_`.
  size_t ThisThreadLaneIndexLocked();

  double origin_s_;
  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<Lane>> lanes_;
};

}  // namespace obs
}  // namespace webre

#endif  // WEBRE_OBS_TRACE_H_
