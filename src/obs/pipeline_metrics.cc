#include "obs/pipeline_metrics.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <limits>

namespace webre {
namespace obs {
namespace {

std::string EscapeJson(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

void AppendKv(std::string& out, const char* key, uint64_t value,
              bool last = false) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "\"%s\":%" PRIu64 "%s", key, value,
                last ? "" : ",");
  out += buf;
}

void AppendStringArray(std::string& out, const char* key,
                       const std::vector<std::string>& values) {
  out += "\"";
  out += key;
  out += "\":[";
  for (size_t i = 0; i < values.size(); ++i) {
    if (i != 0) out += ",";
    out += '"';
    out += EscapeJson(values[i]);
    out += '"';
  }
  out += "]";
}

void AppendCountMap(
    std::string& out, const char* key,
    const std::vector<std::pair<std::string, uint64_t>>& counts) {
  out += "\"";
  out += key;
  out += "\":{";
  for (size_t i = 0; i < counts.size(); ++i) {
    if (i != 0) out += ",";
    char buf[96];
    std::snprintf(buf, sizeof(buf), "\"%s\":%" PRIu64,
                  EscapeJson(counts[i].first).c_str(), counts[i].second);
    out += buf;
  }
  out += "}";
}

}  // namespace

const char* PipelineStageName(PipelineStage stage) {
  switch (stage) {
    case PipelineStage::kParse:
      return "parse";
    case PipelineStage::kTidy:
      return "tidy";
    case PipelineStage::kTokenize:
      return "tokenize";
    case PipelineStage::kInstance:
      return "instance";
    case PipelineStage::kGroup:
      return "group";
    case PipelineStage::kConsolidate:
      return "consolidate";
    case PipelineStage::kExtract:
      return "extract";
    case PipelineStage::kDiscover:
      return "discover";
    case PipelineStage::kValidate:
      return "validate";
    case PipelineStage::kMap:
      return "map";
  }
  return "unknown";
}

std::vector<std::pair<std::string, uint64_t>>
PipelineMetricsSnapshot::CounterItems() const {
  return {
      {"tokenize.tokens_emitted", tokenize_tokens_emitted},
      {"instance.tokens_total", instance_tokens_total},
      {"instance.tokens_identified", instance_tokens_identified},
      {"instance.tokens_via_synonym", instance_tokens_via_synonym},
      {"instance.tokens_via_bayes", instance_tokens_via_bayes},
      {"instance.elements_created", instance_elements_created},
      {"instance.segments_vetoed", instance_segments_vetoed},
      {"grouping.groups_formed", grouping_groups_formed},
      {"consolidation.nodes_deleted", consolidation_nodes_deleted},
      {"consolidation.nodes_pushed_up", consolidation_nodes_pushed_up},
      {"consolidation.nodes_replaced", consolidation_nodes_replaced},
      {"consolidation.replacements_vetoed",
       consolidation_replacements_vetoed},
      {"mem.node_allocs", mem_node_allocs},
      {"mem.arena_bytes", mem_arena_bytes},
      {"mem.flat_bytes", mem_flat_bytes},
      {"query.queries", query_queries},
      {"query.index_hits", query_index_hits},
      {"query.prefix_hits", query_prefix_hits},
      {"query.fallback_walks", query_fallback_walks},
      {"query.flat_scans", query_flat_scans},
      {"query.shard_tasks", query_shard_tasks},
      {"query.matches", query_matches},
      {"query.predicate_bytes_scanned", query_predicate_bytes_scanned},
      {"query.plan.summary", query_plan_summary},
      {"query.plan.sweep", query_plan_sweep},
      {"query.plan.seeded", query_plan_seeded},
      {"query.plan.scan", query_plan_scan},
      {"storage.wal_appends", storage_wal_appends},
      {"storage.wal_replayed", storage_wal_replayed},
      {"storage.wal_truncated_bytes", storage_wal_truncated_bytes},
      {"storage.snapshot_bytes", storage_snapshot_bytes},
      {"storage.mmap_hits", storage_mmap_hits},
      {"serve.accepted_connections", serve_accepted_connections},
      {"serve.active_connections", serve_active_connections},
      {"serve.requests", serve_requests},
      {"serve.shed_requests", serve_shed_requests},
      {"serve.errors", serve_errors},
      {"serve.cache_hits", serve_cache_hits},
      {"serve.cache_misses", serve_cache_misses},
      {"serve.cache_evictions", serve_cache_evictions},
      {"serve.max_queue_depth", serve_max_queue_depth},
      {"serve.loops", serve_loops},
      {"serve.loop.wakeups", serve_loop_wakeups},
      {"serve.wakeups_coalesced", serve_wakeups_coalesced},
      {"serve.loop.handoffs", serve_loop_handoffs},
  };
}

void PipelineMetrics::MergeQueryStats(const QueryStatsView& stats) {
  query.queries.Add(stats.queries);
  query.index_hits.Add(stats.index_hits);
  query.prefix_hits.Add(stats.prefix_hits);
  query.fallback_walks.Add(stats.fallback_walks);
  query.flat_scans.Add(stats.flat_scans);
  query.shard_tasks.Add(stats.shard_tasks);
  query.matches.Add(stats.matches);
  query.predicate_bytes_scanned.Add(stats.predicate_bytes_scanned);
  query.plan_summary.Add(stats.plan_summary);
  query.plan_sweep.Add(stats.plan_sweep);
  query.plan_seeded.Add(stats.plan_seeded);
  query.plan_scan.Add(stats.plan_scan);
  mem.flat_bytes.Add(stats.flat_bytes);
  query_us.Merge(stats.eval_us);
}

void PipelineMetrics::MergeStorageStats(const StorageStatsView& stats) {
  storage.wal_appends.Add(stats.wal_appends);
  storage.wal_replayed.Add(stats.wal_replayed);
  storage.wal_truncated_bytes.Add(stats.wal_truncated_bytes);
  storage.snapshot_bytes.Add(stats.snapshot_bytes);
  storage.mmap_hits.Add(stats.mmap_hits);
}

void PipelineMetrics::MergeServeStats(const ServeStatsView& stats) {
  serve.accepted_connections.Add(stats.accepted_connections);
  serve.active_connections.Add(stats.active_connections);
  serve.requests.Add(stats.requests);
  serve.shed_requests.Add(stats.shed_requests);
  serve.errors.Add(stats.errors);
  serve.cache_hits.Add(stats.cache_hits);
  serve.cache_misses.Add(stats.cache_misses);
  serve.cache_evictions.Add(stats.cache_evictions);
  serve.max_queue_depth.Add(stats.max_queue_depth);
  serve.loops.Add(stats.loops);
  serve.loop_wakeups.Add(stats.wakeups);
  serve.wakeups_coalesced.Add(stats.wakeups_coalesced);
  serve.loop_handoffs.Add(stats.handoffs);
}

void PipelineMetrics::RecordOutcome(const std::string& status_name,
                                    const std::string& failed_stage,
                                    const std::string& message) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++documents_total_;
  ++outcome_counts_[status_name];
  if (status_name == "ok") {
    ++documents_ok_;
    return;
  }
  if (!failed_stage.empty()) ++failed_stage_counts_[failed_stage];
  if (failure_messages_.size() < kMaxFailureMessages &&
      std::find(failure_messages_.begin(), failure_messages_.end(),
                message) == failure_messages_.end()) {
    failure_messages_.push_back(message);
  }
}

void PipelineMetrics::RecordWorkerFailures(
    const std::vector<std::string>& messages) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const std::string& message : messages) {
    if (worker_failures_.size() >= kMaxFailureMessages) break;
    if (std::find(worker_failures_.begin(), worker_failures_.end(),
                  message) == worker_failures_.end()) {
      worker_failures_.push_back(message);
    }
  }
}

void PipelineMetrics::SetAborted(bool aborted) {
  std::lock_guard<std::mutex> lock(mutex_);
  aborted_ = aborted;
}

PipelineMetricsSnapshot PipelineMetrics::Snapshot() const {
  PipelineMetricsSnapshot snapshot;
  snapshot.stages.reserve(kPipelineStageCount);
  for (size_t i = 0; i < kPipelineStageCount; ++i) {
    StageSnapshot stage;
    stage.name = PipelineStageName(static_cast<PipelineStage>(i));
    stage.calls = stages_[i].calls.value();
    stage.wall_ns = stages_[i].wall_ns.value();
    stage.items_in = stages_[i].items_in.value();
    stage.items_out = stages_[i].items_out.value();
    snapshot.stages.push_back(stage);
  }

  snapshot.tokenize_tokens_emitted = tokenize.tokens_emitted.value();
  snapshot.instance_tokens_total = instance.tokens_total.value();
  snapshot.instance_tokens_identified = instance.tokens_identified.value();
  snapshot.instance_tokens_via_synonym = instance.tokens_via_synonym.value();
  snapshot.instance_tokens_via_bayes = instance.tokens_via_bayes.value();
  snapshot.instance_elements_created = instance.elements_created.value();
  snapshot.instance_segments_vetoed = instance.segments_vetoed.value();
  snapshot.grouping_groups_formed = grouping.groups_formed.value();
  snapshot.consolidation_nodes_deleted = consolidation.nodes_deleted.value();
  snapshot.consolidation_nodes_pushed_up =
      consolidation.nodes_pushed_up.value();
  snapshot.consolidation_nodes_replaced =
      consolidation.nodes_replaced.value();
  snapshot.consolidation_replacements_vetoed =
      consolidation.replacements_vetoed.value();

  snapshot.mem_node_allocs = mem.node_allocs.value();
  snapshot.mem_arena_bytes = mem.arena_bytes.value();
  snapshot.mem_flat_bytes = mem.flat_bytes.value();

  snapshot.query_queries = query.queries.value();
  snapshot.query_index_hits = query.index_hits.value();
  snapshot.query_prefix_hits = query.prefix_hits.value();
  snapshot.query_fallback_walks = query.fallback_walks.value();
  snapshot.query_flat_scans = query.flat_scans.value();
  snapshot.query_shard_tasks = query.shard_tasks.value();
  snapshot.query_matches = query.matches.value();
  snapshot.query_predicate_bytes_scanned =
      query.predicate_bytes_scanned.value();
  snapshot.query_plan_summary = query.plan_summary.value();
  snapshot.query_plan_sweep = query.plan_sweep.value();
  snapshot.query_plan_seeded = query.plan_seeded.value();
  snapshot.query_plan_scan = query.plan_scan.value();
  snapshot.storage_wal_appends = storage.wal_appends.value();
  snapshot.storage_wal_replayed = storage.wal_replayed.value();
  snapshot.storage_wal_truncated_bytes = storage.wal_truncated_bytes.value();
  snapshot.storage_snapshot_bytes = storage.snapshot_bytes.value();
  snapshot.storage_mmap_hits = storage.mmap_hits.value();
  snapshot.serve_accepted_connections = serve.accepted_connections.value();
  snapshot.serve_active_connections = serve.active_connections.value();
  snapshot.serve_requests = serve.requests.value();
  snapshot.serve_shed_requests = serve.shed_requests.value();
  snapshot.serve_errors = serve.errors.value();
  snapshot.serve_cache_hits = serve.cache_hits.value();
  snapshot.serve_cache_misses = serve.cache_misses.value();
  snapshot.serve_cache_evictions = serve.cache_evictions.value();
  snapshot.serve_max_queue_depth = serve.max_queue_depth.value();
  snapshot.serve_loops = serve.loops.value();
  snapshot.serve_loop_wakeups = serve.loop_wakeups.value();
  snapshot.serve_wakeups_coalesced = serve.wakeups_coalesced.value();
  snapshot.serve_loop_handoffs = serve.loop_handoffs.value();

  snapshot.budget_steps_used = budget.steps_used.value();
  snapshot.budget_nodes_used = budget.nodes_used.value();
  snapshot.budget_entities_used = budget.entities_used.value();
  snapshot.budget_max_steps_one_doc = budget.max_steps_one_doc.value();
  snapshot.budget_max_nodes_one_doc = budget.max_nodes_one_doc.value();
  snapshot.budget_max_entities_one_doc = budget.max_entities_one_doc.value();

  snapshot.convert_us = convert_us.Snapshot();
  snapshot.query_us = query_us.Snapshot();

  std::lock_guard<std::mutex> lock(mutex_);
  snapshot.documents_total = documents_total_;
  snapshot.documents_ok = documents_ok_;
  snapshot.documents_failed = documents_total_ - documents_ok_;
  snapshot.aborted = aborted_;
  snapshot.outcome_counts.assign(outcome_counts_.begin(),
                                 outcome_counts_.end());
  snapshot.failed_stage_counts.assign(failed_stage_counts_.begin(),
                                      failed_stage_counts_.end());
  snapshot.failure_messages = failure_messages_;
  snapshot.worker_failures = worker_failures_;
  return snapshot;
}

std::string MetricsToJson(const PipelineMetricsSnapshot& snapshot,
                          const BudgetLimitsView* limits) {
  std::string out = "{\n";
  AppendKv(out, "webre_metrics_version", 1);
  out += "\n";

  out += "\"documents\":{";
  AppendKv(out, "total", snapshot.documents_total);
  AppendKv(out, "ok", snapshot.documents_ok);
  AppendKv(out, "failed", snapshot.documents_failed);
  out += "\"aborted\":";
  out += snapshot.aborted ? "true" : "false";
  out += "},\n";

  AppendCountMap(out, "outcomes", snapshot.outcome_counts);
  out += ",\n";
  AppendCountMap(out, "failed_stages", snapshot.failed_stage_counts);
  out += ",\n";
  AppendStringArray(out, "failure_messages", snapshot.failure_messages);
  out += ",\n";
  AppendStringArray(out, "worker_failures", snapshot.worker_failures);
  out += ",\n";

  out += "\"stages\":[\n";
  for (size_t i = 0; i < snapshot.stages.size(); ++i) {
    const StageSnapshot& stage = snapshot.stages[i];
    char buf[192];
    std::snprintf(buf, sizeof(buf),
                  "  {\"name\":\"%s\",\"calls\":%" PRIu64
                  ",\"wall_ms\":%.3f,\"items_in\":%" PRIu64
                  ",\"items_out\":%" PRIu64 "}%s\n",
                  stage.name, stage.calls, stage.wall_ms(), stage.items_in,
                  stage.items_out,
                  i + 1 == snapshot.stages.size() ? "" : ",");
    out += buf;
  }
  out += "],\n";

  out += "\"counters\":{";
  const auto counters = snapshot.CounterItems();
  for (size_t i = 0; i < counters.size(); ++i) {
    if (i != 0) out += ",";
    out += "\n  ";
    char buf[96];
    std::snprintf(buf, sizeof(buf), "\"%s\":%" PRIu64,
                  counters[i].first.c_str(), counters[i].second);
    out += buf;
  }
  out += "\n},\n";

  out += "\"budget\":{";
  AppendKv(out, "steps_used", snapshot.budget_steps_used);
  AppendKv(out, "nodes_used", snapshot.budget_nodes_used);
  AppendKv(out, "entities_used", snapshot.budget_entities_used);
  AppendKv(out, "max_steps_one_doc", snapshot.budget_max_steps_one_doc);
  AppendKv(out, "max_nodes_one_doc", snapshot.budget_max_nodes_one_doc);
  AppendKv(out, "max_entities_one_doc", snapshot.budget_max_entities_one_doc,
           limits == nullptr);
  if (limits != nullptr) {
    constexpr uint64_t kUnlimited = std::numeric_limits<uint64_t>::max();
    out += "\"headroom\":{";
    bool first = true;
    auto headroom = [&](const char* key, uint64_t used, uint64_t limit) {
      if (limit == 0 || limit == kUnlimited) return;
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%s\"%s\":%.4f", first ? "" : ",",
                    key,
                    1.0 - static_cast<double>(used) /
                              static_cast<double>(limit));
      out += buf;
      first = false;
    };
    headroom("steps", snapshot.budget_max_steps_one_doc, limits->max_steps);
    headroom("nodes", snapshot.budget_max_nodes_one_doc, limits->max_nodes);
    headroom("entities", snapshot.budget_max_entities_one_doc,
             limits->max_entities);
    out += "}";
  }
  out += "},\n";

  char buf[192];
  {
    const HistogramSnapshot& h = snapshot.convert_us;
    std::snprintf(buf, sizeof(buf),
                  "\"convert_us\":{\"count\":%" PRIu64 ",\"sum\":%" PRIu64
                  ",\"min\":%" PRIu64 ",\"max\":%" PRIu64 ",\"mean\":%.1f},\n",
                  h.count, h.sum, h.min, h.max, h.mean());
    out += buf;
  }
  {
    const HistogramSnapshot& h = snapshot.query_us;
    std::snprintf(buf, sizeof(buf),
                  "\"query_us\":{\"count\":%" PRIu64 ",\"sum\":%" PRIu64
                  ",\"min\":%" PRIu64 ",\"max\":%" PRIu64 ",\"mean\":%.1f}\n",
                  h.count, h.sum, h.min, h.max, h.mean());
    out += buf;
  }
  out += "}\n";
  return out;
}

std::string MetricsToTable(const PipelineMetricsSnapshot& snapshot) {
  std::string out;
  char buf[160];
  std::snprintf(buf, sizeof(buf), "%-12s %8s %12s %12s %12s\n", "stage",
                "calls", "wall_ms", "items_in", "items_out");
  out += buf;
  for (const StageSnapshot& stage : snapshot.stages) {
    if (stage.calls == 0) continue;
    std::snprintf(buf, sizeof(buf),
                  "%-12s %8" PRIu64 " %12.2f %12" PRIu64 " %12" PRIu64 "\n",
                  stage.name, stage.calls, stage.wall_ms(), stage.items_in,
                  stage.items_out);
    out += buf;
  }
  out += "counters:\n";
  for (const auto& [name, value] : snapshot.CounterItems()) {
    std::snprintf(buf, sizeof(buf), "  %-38s %12" PRIu64 "\n", name.c_str(),
                  value);
    out += buf;
  }
  std::snprintf(buf, sizeof(buf),
                "budget: steps %" PRIu64 ", nodes %" PRIu64
                ", entities %" PRIu64 " (max one doc: %" PRIu64 "/%" PRIu64
                "/%" PRIu64 ")\n",
                snapshot.budget_steps_used, snapshot.budget_nodes_used,
                snapshot.budget_entities_used,
                snapshot.budget_max_steps_one_doc,
                snapshot.budget_max_nodes_one_doc,
                snapshot.budget_max_entities_one_doc);
  out += buf;
  if (snapshot.convert_us.count > 0) {
    std::snprintf(buf, sizeof(buf),
                  "convert latency: mean %.0f us, min %" PRIu64
                  " us, max %" PRIu64 " us over %" PRIu64 " documents\n",
                  snapshot.convert_us.mean(), snapshot.convert_us.min,
                  snapshot.convert_us.max, snapshot.convert_us.count);
    out += buf;
  }
  if (snapshot.query_us.count > 0) {
    std::snprintf(buf, sizeof(buf),
                  "query latency: mean %.0f us, min %" PRIu64
                  " us, max %" PRIu64 " us over %" PRIu64 " queries\n",
                  snapshot.query_us.mean(), snapshot.query_us.min,
                  snapshot.query_us.max, snapshot.query_us.count);
    out += buf;
  }
  std::snprintf(buf, sizeof(buf),
                "documents: %" PRIu64 " total, %" PRIu64 " ok, %" PRIu64
                " failed%s\n",
                snapshot.documents_total, snapshot.documents_ok,
                snapshot.documents_failed,
                snapshot.aborted ? " (aborted)" : "");
  out += buf;
  for (const auto& [stage, count] : snapshot.failed_stage_counts) {
    std::snprintf(buf, sizeof(buf), "  failed in %-12s %8" PRIu64 "\n",
                  stage.c_str(), count);
    out += buf;
  }
  for (const std::string& message : snapshot.failure_messages) {
    out += "  failure: " + message + "\n";
  }
  return out;
}

}  // namespace obs
}  // namespace webre
