#ifndef WEBRE_OBS_PIPELINE_METRICS_H_
#define WEBRE_OBS_PIPELINE_METRICS_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "obs/stage.h"

namespace webre {
namespace obs {

/// Point-in-time view of one stage's accumulators.
struct StageSnapshot {
  const char* name = "";
  uint64_t calls = 0;
  uint64_t wall_ns = 0;
  /// Units are stage-specific (DESIGN.md §10): bytes for parse input,
  /// tree nodes for the structural stages, tokens/paths where noted.
  uint64_t items_in = 0;
  uint64_t items_out = 0;

  double wall_ms() const { return static_cast<double>(wall_ns) / 1e6; }
};

/// Point-in-time view of a whole PipelineMetrics. Plain integers — safe
/// to copy, compare and serialize after workers quiesced.
struct PipelineMetricsSnapshot {
  /// One entry per PipelineStage, in execution order.
  std::vector<StageSnapshot> stages;

  // Rule-specific counters (names match the JSON "counters" keys).
  uint64_t tokenize_tokens_emitted = 0;
  uint64_t instance_tokens_total = 0;
  uint64_t instance_tokens_identified = 0;
  uint64_t instance_tokens_via_synonym = 0;
  uint64_t instance_tokens_via_bayes = 0;
  uint64_t instance_elements_created = 0;
  uint64_t instance_segments_vetoed = 0;
  uint64_t grouping_groups_formed = 0;
  uint64_t consolidation_nodes_deleted = 0;
  uint64_t consolidation_nodes_pushed_up = 0;
  uint64_t consolidation_nodes_replaced = 0;
  uint64_t consolidation_replacements_vetoed = 0;

  // Query-serving counters (repository side; zero for pure conversion
  // runs). Merged in via PipelineMetrics::MergeQueryStats.
  uint64_t query_queries = 0;
  uint64_t query_index_hits = 0;
  uint64_t query_prefix_hits = 0;
  uint64_t query_fallback_walks = 0;
  uint64_t query_flat_scans = 0;
  uint64_t query_shard_tasks = 0;
  uint64_t query_matches = 0;
  uint64_t query_predicate_bytes_scanned = 0;
  uint64_t query_plan_summary = 0;
  uint64_t query_plan_sweep = 0;
  uint64_t query_plan_seeded = 0;
  uint64_t query_plan_scan = 0;

  // Serving front-end counters (zero for runs without a server).
  // Merged in via PipelineMetrics::MergeServeStats.
  uint64_t serve_accepted_connections = 0;
  uint64_t serve_active_connections = 0;
  uint64_t serve_requests = 0;
  uint64_t serve_shed_requests = 0;
  uint64_t serve_errors = 0;
  uint64_t serve_cache_hits = 0;
  uint64_t serve_cache_misses = 0;
  uint64_t serve_cache_evictions = 0;
  uint64_t serve_max_queue_depth = 0;
  uint64_t serve_loops = 0;
  uint64_t serve_loop_wakeups = 0;
  uint64_t serve_wakeups_coalesced = 0;
  uint64_t serve_loop_handoffs = 0;

  // Durable-storage counters (zero for runs without --data-dir).
  // Merged in via PipelineMetrics::MergeStorageStats.
  uint64_t storage_wal_appends = 0;
  uint64_t storage_wal_replayed = 0;
  uint64_t storage_wal_truncated_bytes = 0;
  uint64_t storage_snapshot_bytes = 0;
  uint64_t storage_mmap_hits = 0;

  // Memory accounting (DESIGN.md §11, §13): Node allocations across the
  // batch (arena and heap alike), total arena payload bytes of the
  // surviving documents, and total frozen FlatDoc block bytes held by
  // repositories merged into this run. Per-document sums — byte-
  // identical across thread counts like every other counter.
  uint64_t mem_node_allocs = 0;
  uint64_t mem_arena_bytes = 0;
  uint64_t mem_flat_bytes = 0;

  // Resource-budget consumption (ok documents; failed documents stop
  // charging at the stage that tripped).
  uint64_t budget_steps_used = 0;
  uint64_t budget_nodes_used = 0;
  uint64_t budget_entities_used = 0;
  uint64_t budget_max_steps_one_doc = 0;
  uint64_t budget_max_nodes_one_doc = 0;
  uint64_t budget_max_entities_one_doc = 0;

  // Document outcomes (PR 2 taxonomy folded to batch level).
  uint64_t documents_total = 0;
  uint64_t documents_ok = 0;
  uint64_t documents_failed = 0;
  bool aborted = false;
  /// status name ("ok", "parse_error", ...) → count; every status that
  /// occurred is present.
  std::vector<std::pair<std::string, uint64_t>> outcome_counts;
  /// failed stage ("parse", "tokenize", ...) → count; nonzero only.
  std::vector<std::pair<std::string, uint64_t>> failed_stage_counts;
  /// First kMaxFailureMessages *distinct* failure messages, input order.
  std::vector<std::string> failure_messages;
  /// Messages of tasks that escaped a worker (ThreadPool backstop);
  /// bounded the same way. Normally empty — the per-document exception
  /// barrier catches first.
  std::vector<std::string> worker_failures;

  /// Per-document end-to-end conversion latency, microseconds.
  HistogramSnapshot convert_us;

  /// Per-query serving latency, microseconds (empty for runs without a
  /// query phase).
  HistogramSnapshot query_us;

  /// All rule counters as (json_key, value) in a fixed order — the
  /// single source for serialization and for the determinism tests.
  std::vector<std::pair<std::string, uint64_t>> CounterItems() const;
};

/// The ResourceLimits values relevant to headroom reporting, decoupled
/// from util/resource_limits.h so obs stays dependency-free. A value of
/// SIZE_MAX means "unlimited" (headroom not reported).
struct BudgetLimitsView {
  uint64_t max_steps = 0;
  uint64_t max_nodes = 0;
  uint64_t max_entities = 0;
};

/// Aggregated metrics for one batch run of the conversion pipeline.
///
/// Writers (pipeline workers) touch only lock-free primitives: sharded
/// Counters, CAS MaxGauges and the atomic Histogram. The mutex guards
/// the *cold* path only — failure bookkeeping, which fires at most once
/// per failed document. Snapshot() merges everything; take it after the
/// run (workers joined), which is when the sums are exact.
///
/// All counting is per-document and order-independent, so every counter
/// in the snapshot is byte-identical across thread counts; only the
/// wall-time fields vary run to run (the determinism tests rely on
/// this split).
class PipelineMetrics {
 public:
  /// Cap on stored failure/worker messages (first distinct N).
  static constexpr size_t kMaxFailureMessages = 16;

  PipelineMetrics() = default;
  PipelineMetrics(const PipelineMetrics&) = delete;
  PipelineMetrics& operator=(const PipelineMetrics&) = delete;

  /// Per-stage accumulators, indexed by PipelineStage.
  Counter& stage_calls(PipelineStage s) { return At(s).calls; }
  Counter& stage_wall_ns(PipelineStage s) { return At(s).wall_ns; }
  Counter& stage_items_in(PipelineStage s) { return At(s).items_in; }
  Counter& stage_items_out(PipelineStage s) { return At(s).items_out; }

  /// Records one stage execution in one call (hot path, lock-free).
  void RecordStage(PipelineStage stage, uint64_t wall_ns, uint64_t items_in,
                   uint64_t items_out) {
    StageAccumulator& acc = At(stage);
    acc.calls.Increment();
    acc.wall_ns.Add(wall_ns);
    acc.items_in.Add(items_in);
    acc.items_out.Add(items_out);
  }

  // Rule-specific counters, grouped per rule (hot path, lock-free).
  struct {
    Counter tokens_emitted;
  } tokenize;
  struct {
    Counter tokens_total;
    Counter tokens_identified;
    Counter tokens_via_synonym;
    Counter tokens_via_bayes;
    Counter elements_created;
    Counter segments_vetoed;
  } instance;
  struct {
    Counter groups_formed;
  } grouping;
  struct {
    Counter nodes_deleted;
    Counter nodes_pushed_up;
    Counter nodes_replaced;
    Counter replacements_vetoed;
  } consolidation;
  struct {
    Counter node_allocs;
    Counter arena_bytes;
    Counter flat_bytes;
  } mem;
  struct {
    Counter queries;
    Counter index_hits;
    Counter prefix_hits;
    Counter fallback_walks;
    Counter flat_scans;
    Counter shard_tasks;
    Counter matches;
    Counter predicate_bytes_scanned;
    Counter plan_summary;
    Counter plan_sweep;
    Counter plan_seeded;
    Counter plan_scan;
  } query;
  struct {
    Counter wal_appends;
    Counter wal_replayed;
    Counter wal_truncated_bytes;
    Counter snapshot_bytes;
    Counter mmap_hits;
  } storage;
  struct {
    Counter accepted_connections;
    Counter active_connections;
    Counter requests;
    Counter shed_requests;
    Counter errors;
    Counter cache_hits;
    Counter cache_misses;
    Counter cache_evictions;
    Counter max_queue_depth;
    Counter loops;
    Counter loop_wakeups;
    Counter wakeups_coalesced;
    Counter loop_handoffs;
  } serve;
  struct {
    Counter steps_used;
    Counter nodes_used;
    Counter entities_used;
    MaxGauge max_steps_one_doc;
    MaxGauge max_nodes_one_doc;
    MaxGauge max_entities_one_doc;
  } budget;

  /// Per-document end-to-end conversion latency, microseconds.
  Histogram convert_us;

  /// Per-query serving latency, microseconds.
  Histogram query_us;

  /// Folds a repository's query-serving counters into the batch metrics
  /// (the query.* counter group and the query_us histogram). Call after
  /// the query phase quiesced; additive, so several repositories can be
  /// merged.
  void MergeQueryStats(const QueryStatsView& stats);

  /// Folds a durable repository's storage counters into the batch
  /// metrics (the storage.* counter group). Additive like
  /// MergeQueryStats.
  void MergeStorageStats(const StorageStatsView& stats);

  /// Folds a serving front end's counters into the batch metrics (the
  /// serve.* counter group). Additive like MergeQueryStats; the
  /// request_us histogram stays with the server's stats endpoint.
  void MergeServeStats(const ServeStatsView& stats);

  /// Folds one document's fate into the batch metrics (cold path; call
  /// once per document, serially for a deterministic message order).
  /// `status_name` is DocumentStatusName(outcome.status); for ok
  /// documents `failed_stage`/`message` are empty.
  void RecordOutcome(const std::string& status_name,
                     const std::string& failed_stage,
                     const std::string& message);

  /// Records messages of tasks that escaped a pool worker (bounded,
  /// distinct).
  void RecordWorkerFailures(const std::vector<std::string>& messages);

  /// Marks the batch as aborted (keep_going off and a document failed).
  void SetAborted(bool aborted);

  /// Merged view of every accumulator. Exact once writers quiesced.
  PipelineMetricsSnapshot Snapshot() const;

 private:
  struct StageAccumulator {
    Counter calls;
    Counter wall_ns;
    Counter items_in;
    Counter items_out;
  };

  StageAccumulator& At(PipelineStage s) {
    return stages_[static_cast<size_t>(s)];
  }

  StageAccumulator stages_[kPipelineStageCount];

  mutable std::mutex mutex_;
  uint64_t documents_total_ = 0;
  uint64_t documents_ok_ = 0;
  bool aborted_ = false;
  std::map<std::string, uint64_t> outcome_counts_;
  std::map<std::string, uint64_t> failed_stage_counts_;
  std::vector<std::string> failure_messages_;
  std::vector<std::string> worker_failures_;
};

/// Serializes a snapshot as the machine-readable batch summary written
/// by `--metrics-json` (schema in docs/CLI.md; version field
/// "webre_metrics_version"). When `limits` is non-null, a "headroom"
/// object reports 1 − max_one_doc/limit per budget dimension (omitted
/// for unlimited caps).
std::string MetricsToJson(const PipelineMetricsSnapshot& snapshot,
                          const BudgetLimitsView* limits = nullptr);

/// Renders the human-readable `--stats` table (stderr-friendly,
/// fixed-width columns).
std::string MetricsToTable(const PipelineMetricsSnapshot& snapshot);

}  // namespace obs
}  // namespace webre

#endif  // WEBRE_OBS_PIPELINE_METRICS_H_
