// Serving bench: the network front end under open-loop load.
//
// Builds a repository from generated resumes, starts an in-process
// Server on an ephemeral loopback port, and drives it with the shared
// loadgen library (the same arrival process and latency accounting the
// tools/loadgen binary uses) in two arms:
//
//   read_only — path queries only. Steady state is cache hits: the
//               generation-keyed result cache answers repeats without
//               re-evaluating, so this arm measures the wire + loop +
//               cache path.
//   mixed     — 10% ingests (full HTML conversion + admission). Every
//               ingest bumps its shard's generation, invalidating
//               cached results, so this arm measures the cache under
//               churn plus convert-on-the-worker-pool latency.
//
// A third `scaling` section replays both workloads against fresh
// servers at --loops 1, 2 and 4 (2 connections per loop, same corpus
// rebuilt per configuration so ingests cannot leak across arms). It
// records `cores` (hardware threads of the machine the record was
// captured on) because the multi-reactor speedup is meaningless
// without it — ci/bench_smoke.sh asserts the 1->4-loop read speedup
// floor only when the artifact was recorded on >= 4 cores, and a
// non-regression floor otherwise.
//
// The binary fails (exit 1) when any response was an error — sheds are
// reported but only count as failure for the read_only arms, which are
// provisioned to stay under the admission limits.
//
// Prints one JSON object to stdout; the checked-in BENCH_serving.json
// is a captured full run on the reference container (1 core).
// ci/bench_smoke.sh replays a tiny run and asserts the artifact's
// floors (achieved_qps >= 0.9 * target on read_only, errors == 0).
//
// Usage: bench_serving [--docs=N] [--qps=F] [--mixed-qps=F]
//                      [--duration=F] [--connections=N] [--workers=N]

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "concepts/resume_domain.h"
#include "corpus/resume_generator.h"
#include "repository/repository.h"
#include "restructure/converter.h"
#include "restructure/recognizer.h"
#include "serve/loadgen.h"
#include "serve/server.h"

namespace {

struct Flags {
  size_t docs = 200;
  double qps = 1200.0;        // read_only target
  double mixed_qps = 400.0;   // mixed target
  double duration_s = 2.0;
  size_t connections = 2;
  size_t workers = 2;
};

Flags ParseFlags(int argc, char** argv) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--docs=", 0) == 0) {
      flags.docs = std::strtoull(arg.c_str() + 7, nullptr, 10);
    } else if (arg.rfind("--qps=", 0) == 0) {
      flags.qps = std::strtod(arg.c_str() + 6, nullptr);
    } else if (arg.rfind("--mixed-qps=", 0) == 0) {
      flags.mixed_qps = std::strtod(arg.c_str() + 12, nullptr);
    } else if (arg.rfind("--duration=", 0) == 0) {
      flags.duration_s = std::strtod(arg.c_str() + 11, nullptr);
    } else if (arg.rfind("--connections=", 0) == 0) {
      flags.connections = std::strtoull(arg.c_str() + 14, nullptr, 10);
    } else if (arg.rfind("--workers=", 0) == 0) {
      flags.workers = std::strtoull(arg.c_str() + 10, nullptr, 10);
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      std::exit(2);
    }
  }
  return flags;
}

const char* const kQueries[] = {
    "/resume/EDUCATION/DATE",
    "/resume/SKILLS/LANGUAGE",
    "/resume/CONTACT/LOCATION/EMAIL",
    "//DATE",
    "//LANGUAGE[val~\"java\"]",
    "/resume/EXPERIENCE//DATE",
    "//LOCATION/*",
    "/resume/EDUCATION[val~\"univ\"]/DATE",
};

// One arm's JSON: the loadgen report plus the serve.* counter deltas
// attributed to it.
std::string ArmJson(const webre::serve::LoadgenReport& report,
                    double target_qps, double write_fraction,
                    const webre::obs::ServeStatsView& before,
                    const webre::obs::ServeStatsView& after) {
  std::string out = webre::serve::LoadgenReportToJson(report, target_qps,
                                                      write_fraction);
  out.pop_back();  // strip '}', append the counter deltas
  out += ",\"cache_hits\":" +
         std::to_string(after.cache_hits - before.cache_hits);
  out += ",\"cache_misses\":" +
         std::to_string(after.cache_misses - before.cache_misses);
  out += ",\"shed_requests\":" +
         std::to_string(after.shed_requests - before.shed_requests);
  out += "}";
  return out;
}

// Blocks until the server has processed every previous arm's connection
// teardown. The connection cap counts a connection until its EOF is
// handled by its loop, so starting the next arm too early would shed
// its clients against the cap and poison the measurement.
void AwaitConnectionDrain(const webre::serve::Server& server) {
  while (server.stats().active_connections > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags = ParseFlags(argc, argv);

  webre::ConceptSet concepts = webre::ResumeConcepts();
  webre::ConstraintSet constraints = webre::ResumeConstraints();
  webre::SynonymRecognizer recognizer(&concepts);
  webre::DocumentConverter converter(&concepts, &recognizer, &constraints);

  webre::RepositoryOptions repo_options;
  repo_options.num_shards = 4;
  webre::XmlRepository repo(repo_options);
  for (size_t i = 0; i < flags.docs; ++i) {
    repo.Add(converter.Convert(webre::GenerateResume(i).html)).value();
  }

  webre::serve::ServeContext context;
  context.repo = &repo;
  context.converter = &converter;
  webre::serve::ServeOptions serve_options;
  serve_options.worker_threads = flags.workers;
  serve_options.max_clients = flags.connections + 4;
  webre::serve::Server server(context, serve_options);
  if (webre::Status status = server.Start(); !status.ok()) {
    std::fprintf(stderr, "bench_serving: %s\n", status.ToString().c_str());
    return 1;
  }

  webre::serve::LoadgenOptions load;
  load.port = server.port();
  load.duration_s = flags.duration_s;
  load.connections = flags.connections;
  for (const char* query : kQueries) load.queries.push_back(query);
  for (size_t i = 0; i < 8; ++i) {
    load.ingest_bodies.push_back(
        webre::GenerateResume(flags.docs + i).html);
  }

  // Arm 1: read-only at the higher target.
  load.target_qps = flags.qps;
  load.write_fraction = 0.0;
  load.seed = 1;
  const webre::obs::ServeStatsView before_read = server.stats().view;
  auto read_only = webre::serve::RunLoadgen(load);
  const webre::obs::ServeStatsView after_read = server.stats().view;

  // Arm 2: 10% ingests at the mixed target.
  AwaitConnectionDrain(server);
  load.target_qps = flags.mixed_qps;
  load.write_fraction = 0.1;
  load.seed = 2;
  auto mixed = webre::serve::RunLoadgen(load);
  const webre::obs::ServeStatsView after_mixed = server.stats().view;
  server.Stop();

  if (!read_only.ok() || !mixed.ok()) {
    std::fprintf(stderr, "bench_serving: loadgen failed: %s\n",
                 (!read_only.ok() ? read_only.status() : mixed.status())
                     .ToString()
                     .c_str());
    return 1;
  }

  // Scaling study: both workloads against fresh 1-, 2- and 4-loop
  // servers. Each configuration gets its own repository built from the
  // same seeds, so the mixed arm's ingests cannot grow the corpus a
  // later configuration is measured on.
  const size_t kLoopCounts[] = {1, 2, 4};
  std::string scaling_arms;
  double scaling_read_qps[3] = {0.0, 0.0, 0.0};
  double scaling_mixed_qps[3] = {0.0, 0.0, 0.0};
  bool scaling_failed = false;
  for (size_t li = 0; li < 3; ++li) {
    const size_t loops = kLoopCounts[li];
    webre::RepositoryOptions scale_repo_options;
    scale_repo_options.num_shards = 4;
    webre::XmlRepository scale_repo(scale_repo_options);
    for (size_t i = 0; i < flags.docs; ++i) {
      scale_repo.Add(converter.Convert(webre::GenerateResume(i).html))
          .value();
    }
    webre::serve::ServeContext scale_context;
    scale_context.repo = &scale_repo;
    scale_context.converter = &converter;
    webre::serve::ServeOptions scale_options;
    scale_options.worker_threads = flags.workers;
    scale_options.loops = loops;
    scale_options.max_clients = 2 * loops + 4;
    webre::serve::Server scale_server(scale_context, scale_options);
    if (webre::Status status = scale_server.Start(); !status.ok()) {
      std::fprintf(stderr, "bench_serving: %s\n",
                   status.ToString().c_str());
      return 1;
    }

    webre::serve::LoadgenOptions scale_load = load;
    scale_load.port = scale_server.port();
    scale_load.connections = 2 * loops;

    scale_load.target_qps = flags.qps;
    scale_load.write_fraction = 0.0;
    scale_load.seed = 10 + loops;
    const webre::obs::ServeStatsView scale_before =
        scale_server.stats().view;
    auto scale_read = webre::serve::RunLoadgen(scale_load);
    AwaitConnectionDrain(scale_server);
    const webre::obs::ServeStatsView scale_mid = scale_server.stats().view;

    scale_load.target_qps = flags.mixed_qps;
    scale_load.write_fraction = 0.1;
    scale_load.seed = 20 + loops;
    auto scale_mixed = webre::serve::RunLoadgen(scale_load);
    const webre::obs::ServeStatsView scale_after =
        scale_server.stats().view;
    scale_server.Stop();

    if (!scale_read.ok() || !scale_mixed.ok()) {
      std::fprintf(
          stderr, "bench_serving: scaling loadgen failed: %s\n",
          (!scale_read.ok() ? scale_read.status() : scale_mixed.status())
              .ToString()
              .c_str());
      return 1;
    }
    if (scale_read->errors != 0 || scale_mixed->errors != 0 ||
        scale_read->shed != 0) {
      scaling_failed = true;
    }
    scaling_read_qps[li] = scale_read->achieved_qps;
    scaling_mixed_qps[li] = scale_mixed->achieved_qps;
    char label[64];
    std::snprintf(label, sizeof(label),
                  "      \"loops%zu_read\": ", loops);
    if (!scaling_arms.empty()) scaling_arms += ",\n";
    scaling_arms += label;
    scaling_arms +=
        ArmJson(*scale_read, flags.qps, 0.0, scale_before, scale_mid);
    std::snprintf(label, sizeof(label),
                  ",\n      \"loops%zu_mixed\": ", loops);
    scaling_arms += label;
    scaling_arms += ArmJson(*scale_mixed, flags.mixed_qps, 0.1, scale_mid,
                            scale_after);
  }

  std::printf("{\n  \"bench\": \"bench_serving\",\n");
  std::printf("  \"corpus\": {\"generator\": \"GenerateResume\", "
              "\"documents\": %zu, \"shards\": 4, \"connections\": %zu, "
              "\"workers\": %zu, \"duration_s\": %.1f},\n",
              flags.docs, flags.connections, flags.workers,
              flags.duration_s);
  std::printf("  \"arms\": {\n    \"read_only\": %s,\n    \"mixed\": %s\n"
              "  },\n",
              ArmJson(*read_only, flags.qps, 0.0, before_read, after_read)
                  .c_str(),
              ArmJson(*mixed, flags.mixed_qps, 0.1, after_read, after_mixed)
                  .c_str());
  const unsigned cores = std::thread::hardware_concurrency();
  std::printf("  \"scaling\": {\n    \"cores\": %u,\n    \"arms\": {\n"
              "%s\n    }\n  },\n",
              cores == 0 ? 1 : cores, scaling_arms.c_str());
  const uint64_t read_lookups = (after_read.cache_hits -
                                 before_read.cache_hits) +
                                (after_read.cache_misses -
                                 before_read.cache_misses);
  std::printf("  \"derived\": {\"read_only_qps_ratio\": %.3f, "
              "\"mixed_qps_ratio\": %.3f, "
              "\"read_only_cache_hit_rate\": %.3f, "
              "\"scaling_read_speedup_1_to_4\": %.3f, "
              "\"scaling_mixed_speedup_1_to_4\": %.3f}\n}\n",
              flags.qps > 0 ? read_only->achieved_qps / flags.qps : 0.0,
              flags.mixed_qps > 0 ? mixed->achieved_qps / flags.mixed_qps
                                  : 0.0,
              read_lookups > 0
                  ? static_cast<double>(after_read.cache_hits -
                                        before_read.cache_hits) /
                        static_cast<double>(read_lookups)
                  : 0.0,
              scaling_read_qps[0] > 0
                  ? scaling_read_qps[2] / scaling_read_qps[0]
                  : 0.0,
              scaling_mixed_qps[0] > 0
                  ? scaling_mixed_qps[2] / scaling_mixed_qps[0]
                  : 0.0);

  if (scaling_failed) {
    std::fprintf(stderr,
                 "bench_serving: FAILED (scaling arm recorded errors or "
                 "read-arm sheds)\n");
    return 1;
  }
  if (read_only->errors != 0 || mixed->errors != 0 ||
      read_only->shed != 0) {
    std::fprintf(stderr,
                 "bench_serving: FAILED (read errors %llu shed %llu, "
                 "mixed errors %llu)\n",
                 static_cast<unsigned long long>(read_only->errors),
                 static_cast<unsigned long long>(read_only->shed),
                 static_cast<unsigned long long>(mixed->errors));
    return 1;
  }
  return 0;
}
