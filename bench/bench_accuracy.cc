// Reproduces §4.1 / Figure 4: data extraction accuracy.
//
// Paper protocol: 50 resume documents are inspected and the number of
// wrong parent-child / sibling relationships in each extracted tree is
// counted; moving a node together with its siblings counts as one
// logical error. Reported: a histogram of per-document error
// percentages (buckets of 4 points), the average number of errors per
// document (paper: 3.9), the average number of concept nodes per
// document (paper: 53.7) and the resulting accuracy (paper: 90.8%).
//
// Here ground truth comes from the corpus generator instead of manual
// inspection, so the experiment also runs at larger scales
// (--docs=N, default 50 as in the paper).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>

#include "concepts/resume_domain.h"
#include "corpus/resume_generator.h"
#include "restructure/accuracy.h"
#include "restructure/converter.h"
#include "restructure/recognizer.h"

namespace {

size_t FlagOr(int argc, char** argv, const char* name, size_t fallback) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::strtoul(argv[i] + prefix.size(), nullptr, 10);
    }
  }
  return fallback;
}

}  // namespace

int main(int argc, char** argv) {
  const size_t num_docs = FlagOr(argc, argv, "docs", 50);

  webre::ConceptSet concepts = webre::ResumeConcepts();
  webre::ConstraintSet constraints = webre::ResumeConstraints();
  webre::SynonymRecognizer recognizer(&concepts);
  webre::DocumentConverter converter(&concepts, &recognizer, &constraints);

  std::map<int, size_t> histogram;  // bucket (4% wide) -> #documents
  double total_errors = 0.0;
  double total_nodes = 0.0;
  size_t perfect = 0;

  for (size_t i = 0; i < num_docs; ++i) {
    webre::GeneratedResume resume = webre::GenerateResume(i);
    auto xml = converter.Convert(resume.html);
    webre::AccuracyReport report = webre::CompareTrees(*xml, *resume.truth);
    total_errors += static_cast<double>(report.logical_errors);
    total_nodes += static_cast<double>(report.concept_nodes);
    if (report.logical_errors == 0) ++perfect;
    ++histogram[static_cast<int>(report.ErrorPercent() / 4.0)];
  }

  const double docs = static_cast<double>(num_docs);
  const double avg_errors = total_errors / docs;
  const double avg_nodes = total_nodes / docs;
  const double error_pct = 100.0 * total_errors / total_nodes;

  std::printf("== Figure 4 / Section 4.1: data extraction accuracy ==\n");
  std::printf("documents inspected:            %zu (paper: 50)\n", num_docs);
  std::printf("avg logical errors / document:  %.1f (paper: 3.9)\n",
              avg_errors);
  std::printf("avg concept nodes / document:   %.1f (paper: 53.7)\n",
              avg_nodes);
  std::printf("avg error percentage:           %.1f%% (paper: 9.2%%)\n",
              error_pct);
  std::printf("restructuring accuracy:         %.1f%% (paper: 90.8%%)\n",
              100.0 - error_pct);
  std::printf("error-free documents:           %zu\n\n", perfect);

  std::printf("histogram of error%% per document (Figure 4):\n");
  const int max_bucket = histogram.empty() ? 0 : histogram.rbegin()->first;
  for (int b = 0; b <= max_bucket; ++b) {
    const size_t count = histogram.count(b) ? histogram.at(b) : 0;
    std::printf("  %2d-%2d%%  %4zu  ", b * 4, b * 4 + 4, count);
    for (size_t k = 0; k < count; ++k) std::printf("#");
    std::printf("\n");
  }
  return 0;
}
