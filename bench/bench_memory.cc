// Memory-layer bench: single-thread end-to-end conversion throughput,
// heap allocations per document, peak RSS over a generated resume
// corpus, and the steady-state RSS of a repository holding that corpus
// (conversion scaffolding released, heap trimmed). Prints one JSON
// object (one "arm") to stdout; the checked-in BENCH_memory.json
// combines a pre-change arm with the current build (see
// ci/bench_smoke.sh, which validates that file's schema).
//
// The binary intentionally uses only the pipeline's stable public API
// so the same source compiles against the pre-arena tree — that is how
// the "before" arm of BENCH_memory.json was measured. The repository
// ingest is likewise gated on the header existing.
//
// Usage: bench_memory [--docs=N] [--arm=NAME] [--arena=on|off]
//                     [--flat=on|off]

#include <sys/resource.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>
#include <string>
#include <vector>

#include "concepts/resume_domain.h"
#include "core/pipeline.h"
#include "corpus/resume_generator.h"
#include "restructure/recognizer.h"

#if __has_include("xml/node_arena.h")
#define WEBRE_BENCH_HAS_NODE_ARENA 1
#endif
#if __has_include("repository/repository.h")
#include "repository/repository.h"
#define WEBRE_BENCH_HAS_REPOSITORY 1
#endif
#if defined(__GLIBC__)
#include <malloc.h>
#endif

namespace {

// Counts every heap allocation made while g_counting is set. The
// pipeline is run single-threaded here, but the counters stay atomic so
// incidental helper threads cannot corrupt them.
std::atomic<uint64_t> g_heap_allocs{0};
std::atomic<bool> g_counting{false};

inline void CountAlloc() {
  if (g_counting.load(std::memory_order_relaxed)) {
    g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  }
}

}  // namespace

void* operator new(std::size_t size) {
  CountAlloc();
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  CountAlloc();
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* operator new(std::size_t size, std::align_val_t align) {
  CountAlloc();
  const std::size_t a = static_cast<std::size_t>(align);
  const std::size_t rounded = (size + a - 1) / a * a;
  if (void* p = std::aligned_alloc(a, rounded ? rounded : a)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size, std::align_val_t align) {
  return operator new(size, align);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace {

struct Flags {
  std::size_t docs = 200;
  std::string arm = "current";
  bool arena = true;
  bool flat = true;
};

// Resident set right now, from /proc/self/status (ru_maxrss is the
// high-water mark and never comes back down, so it cannot observe the
// savings from freezing trees and releasing their arenas). Returns 0.0
// where /proc is unavailable.
double CurrentRssMb() {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0.0;
  char line[256];
  double mb = 0.0;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::strncmp(line, "VmRSS:", 6) == 0) {
      mb = std::strtod(line + 6, nullptr) / 1024.0;  // value is in KiB
      break;
    }
  }
  std::fclose(f);
  return mb;
}

Flags ParseFlags(int argc, char** argv) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--docs=", 0) == 0) {
      flags.docs = static_cast<std::size_t>(
          std::strtoull(arg.c_str() + 7, nullptr, 10));
    } else if (arg.rfind("--arm=", 0) == 0) {
      flags.arm = arg.substr(6);
    } else if (arg == "--arena=on") {
      flags.arena = true;
    } else if (arg == "--arena=off") {
      flags.arena = false;
    } else if (arg == "--flat=on") {
      flags.flat = true;
    } else if (arg == "--flat=off") {
      flags.flat = false;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      std::exit(2);
    }
  }
  return flags;
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags = ParseFlags(argc, argv);

  std::vector<std::string> pages;
  std::size_t input_bytes = 0;
  for (std::size_t i = 0; i < flags.docs; ++i) {
    pages.push_back(webre::GenerateResume(i).html);
    input_bytes += pages.back().size();
  }

  webre::ConceptSet concepts = webre::ResumeConcepts();
  webre::ConstraintSet constraints = webre::ResumeConstraints();
  webre::SynonymRecognizer recognizer(&concepts);

  webre::PipelineOptions options;
  options.parallel.num_threads = 1;
  // The printed "arena" field reports what actually ran, not what was
  // requested: a pre-arena build always runs (and reports) arena-less.
  bool arena_in_effect = false;
#ifdef WEBRE_BENCH_HAS_NODE_ARENA
  options.use_node_arena = flags.arena;
  arena_in_effect = flags.arena;
#else
  if (flags.arena) {
    std::fprintf(stderr, "note: this build has no node arena\n");
  }
#endif
  webre::Pipeline pipeline(&concepts, &recognizer, &constraints, options);

  // Warmup: seeds the global tables (interner, tag tables, synonym
  // automaton) and faults in the code, so the timed run measures the
  // steady state both arms reach in production.
  {
    std::vector<std::string> warm(pages.begin(),
                                  pages.begin() +
                                      static_cast<long>(
                                          std::min<std::size_t>(8, pages.size())));
    webre::PipelineResult warm_result = pipeline.Run(warm);
    if (warm_result.failed_documents != 0) {
      std::fprintf(stderr, "warmup conversion failed\n");
      return 1;
    }
  }

  g_heap_allocs.store(0, std::memory_order_relaxed);
  g_counting.store(true, std::memory_order_relaxed);
  const auto start = std::chrono::steady_clock::now();
  webre::PipelineResult result = pipeline.Run(pages);
  const auto stop = std::chrono::steady_clock::now();
  g_counting.store(false, std::memory_order_relaxed);
  const uint64_t heap_allocs = g_heap_allocs.load(std::memory_order_relaxed);

  if (result.failed_documents != 0) {
    std::fprintf(stderr, "%zu documents failed\n", result.failed_documents);
    return 1;
  }

  const double seconds =
      std::chrono::duration<double>(stop - start).count();
  struct rusage usage {};
  getrusage(RUSAGE_SELF, &usage);  // ru_maxrss is KiB on Linux

  // Steady state: hand the converted corpus to the repository (which
  // freezes each tree into a FlatDoc and releases its arena unless
  // --flat=off), drop every piece of conversion scaffolding, trim the
  // heap, and read the resident set that remains.
  double repo_rss_mb = 0.0;
  bool flat_in_effect = false;
#ifdef WEBRE_BENCH_HAS_REPOSITORY
  webre::RepositoryOptions repo_options;
  repo_options.num_shards = 1;
  repo_options.query_threads = 1;
  repo_options.freeze_flat = flags.flat;
  flat_in_effect = flags.flat;
  webre::XmlRepository repo(repo_options);
  for (std::size_t i = 0; i < result.documents.size(); ++i) {
    if (result.documents[i] == nullptr) continue;
    std::shared_ptr<webre::NodeArena> arena =
        i < result.arenas.size() ? result.arenas[i] : nullptr;
    if (!repo.Add(std::move(result.documents[i]), std::move(arena)).ok()) {
      std::fprintf(stderr, "repository rejected document %zu\n", i);
      return 1;
    }
  }
  result = webre::PipelineResult{};  // free trees, arenas, outcomes
  pages.clear();
  pages.shrink_to_fit();
#if defined(__GLIBC__)
  malloc_trim(0);  // return freed pages so VmRSS reflects live data
#endif
  repo_rss_mb = CurrentRssMb();
#endif

  std::printf(
      "{\n"
      "  \"arm\": \"%s\",\n"
      "  \"arena\": %s,\n"
      "  \"flat\": %s,\n"
      "  \"documents\": %zu,\n"
      "  \"input_mb\": %.3f,\n"
      "  \"seconds\": %.4f,\n"
      "  \"docs_per_sec\": %.1f,\n"
      "  \"mb_per_sec\": %.2f,\n"
      "  \"heap_allocs\": %llu,\n"
      "  \"heap_allocs_per_doc\": %.1f,\n"
      "  \"peak_rss_mb\": %.1f,\n"
      "  \"repo_rss_mb\": %.1f\n"
      "}\n",
      flags.arm.c_str(), arena_in_effect ? "true" : "false",
      flat_in_effect ? "true" : "false", flags.docs,
      static_cast<double>(input_bytes) / (1024.0 * 1024.0), seconds,
      static_cast<double>(flags.docs) / seconds,
      static_cast<double>(input_bytes) / (1024.0 * 1024.0) / seconds,
      static_cast<unsigned long long>(heap_allocs),
      static_cast<double>(heap_allocs) / static_cast<double>(flags.docs),
      static_cast<double>(usage.ru_maxrss) / 1024.0, repo_rss_mb);
#ifdef WEBRE_BENCH_HAS_REPOSITORY
  if (repo.size() == 0) return 1;  // keep the repository live until here
#endif
  return 0;
}
