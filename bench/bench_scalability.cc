// Reproduces §4.3 / Figure 5: scalability of document conversion +
// schema discovery against the number of documents, the number of
// nodes, and the number of concept (keyword) nodes.
//
// The paper ran datasets of up to 380 resumes on a Pentium 266 and
// found running time "bears a very strong linear relationship with the
// number of concept nodes" (and with nodes and documents). Absolute
// times are machine-bound; the series below reproduce the *linearity* —
// the per-document time must stay flat as the dataset grows. A
// least-squares linearity check (R^2 of time vs concept nodes) is
// printed at the end.

#include <chrono>
#include <cstdio>
#include <vector>

#include "concepts/resume_domain.h"
#include "corpus/resume_generator.h"
#include "restructure/converter.h"
#include "restructure/recognizer.h"
#include "schema/frequent_paths.h"

namespace {

double Now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

int main() {
  webre::ConceptSet concepts = webre::ResumeConcepts();
  webre::ConstraintSet constraints = webre::ResumeConstraints();
  webre::SynonymRecognizer recognizer(&concepts);
  webre::DocumentConverter converter(&concepts, &recognizer, &constraints);

  // Pre-generate the HTML corpus (generation is not part of the timed
  // pipeline — the paper's crawler had already fetched the pages).
  const std::vector<size_t> dataset_sizes = {20, 50, 95, 190, 380};
  std::vector<std::string> pages;
  for (size_t i = 0; i < dataset_sizes.back(); ++i) {
    pages.push_back(webre::GenerateResume(i).html);
  }

  std::printf("== Figure 5 / Section 4.3: scalability ==\n");
  std::printf("%8s %12s %14s %12s %14s %18s\n", "docs", "nodes",
              "concept nodes", "time (ms)", "ms/doc",
              "us/concept node");

  std::vector<double> xs;  // concept nodes
  std::vector<double> ys;  // seconds
  for (size_t size : dataset_sizes) {
    const double start = Now();
    webre::MiningOptions options;
    options.constraints = &constraints;
    webre::FrequentPathMiner miner(options);
    size_t total_nodes = 0;
    size_t concept_nodes = 0;
    for (size_t i = 0; i < size; ++i) {
      webre::ConvertStats stats;
      auto doc = converter.Convert(pages[i], &stats);
      miner.AddDocument(*doc);
      total_nodes += doc->SubtreeSize();
      concept_nodes += stats.concept_nodes;
    }
    miner.Discover();
    const double elapsed = Now() - start;
    xs.push_back(static_cast<double>(concept_nodes));
    ys.push_back(elapsed);
    std::printf("%8zu %12zu %14zu %12.1f %14.3f %18.2f\n", size,
                total_nodes, concept_nodes, elapsed * 1e3,
                elapsed * 1e3 / static_cast<double>(size),
                elapsed * 1e6 / static_cast<double>(concept_nodes));
  }

  // R^2 of time ~ concept nodes (through-origin least squares).
  double sxy = 0.0;
  double sxx = 0.0;
  for (size_t i = 0; i < xs.size(); ++i) {
    sxy += xs[i] * ys[i];
    sxx += xs[i] * xs[i];
  }
  const double slope = sxy / sxx;
  double ss_res = 0.0;
  double ss_tot = 0.0;
  double mean_y = 0.0;
  for (double y : ys) mean_y += y;
  mean_y /= static_cast<double>(ys.size());
  for (size_t i = 0; i < xs.size(); ++i) {
    const double err = ys[i] - slope * xs[i];
    ss_res += err * err;
    ss_tot += (ys[i] - mean_y) * (ys[i] - mean_y);
  }
  std::printf("\nlinearity of time vs concept nodes: R^2 = %.4f "
              "(paper: \"very strong linear relationship\")\n",
              1.0 - ss_res / ss_tot);
  return 0;
}
