// Reproduces §4.3 / Figure 5 (scalability of conversion + discovery)
// and tracks this repo's own performance trajectory: end-to-end
// pipeline throughput serial vs. parallel, and concept matching with
// the naive per-instance rescan vs. the Aho–Corasick automaton.
//
// Results are printed human-readable and written machine-readable to
// BENCH_scalability.json in the working directory so successive PRs can
// diff docs/sec numbers.
//
// "Seed baseline" below = the repo's original configuration: one
// thread, naive O(|text| × Σ|instance|) matching.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "concepts/instance_matcher.h"
#include "concepts/resume_domain.h"
#include "core/pipeline.h"
#include "corpus/resume_generator.h"
#include "obs/pipeline_metrics.h"
#include "obs/trace.h"
#include "html/parser.h"
#include "html/tidy.h"
#include "restructure/converter.h"
#include "restructure/recognizer.h"
#include "schema/frequent_paths.h"
#include "util/strings.h"
#include "util/thread_pool.h"

namespace {

double Now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// The seed's matching strategy, for baseline timings: same semantics as
// SynonymRecognizer but through the reference MatchAllNaive scan.
class NaiveSynonymRecognizer : public webre::ConceptRecognizer {
 public:
  explicit NaiveSynonymRecognizer(const webre::ConceptSet* concepts)
      : concepts_(concepts) {}
  std::vector<webre::InstanceMatch> Recognize(
      std::string_view token_text) const override {
    return concepts_->MatchAllNaive(token_text);
  }

 private:
  const webre::ConceptSet* concepts_;
};

struct PipelineTiming {
  double seconds = 0.0;
  double docs_per_sec = 0.0;
};

// Best-of-3 end-to-end Pipeline::Run over `pages`. Optional metrics /
// trace sinks measure the observability overhead (DESIGN.md §10): the
// instrumented run does everything the plain run does *plus* span
// recording and trace collection.
PipelineTiming TimePipeline(const webre::ConceptSet& concepts,
                            const webre::ConceptRecognizer& recognizer,
                            const webre::ConstraintSet& constraints,
                            const std::vector<std::string>& pages,
                            size_t threads,
                            webre::obs::PipelineMetrics* metrics = nullptr,
                            webre::obs::TraceCollector* trace = nullptr) {
  webre::PipelineOptions options;
  options.parallel.num_threads = threads;
  options.metrics = metrics;
  options.trace = trace;
  webre::Pipeline pipeline(&concepts, &recognizer, &constraints, options);
  double best = 1e18;
  for (int round = 0; round < 3; ++round) {
    const double start = Now();
    webre::PipelineResult result = pipeline.Run(pages);
    const double elapsed = Now() - start;
    if (result.schema.empty()) std::fprintf(stderr, "empty schema?!\n");
    best = std::min(best, elapsed);
  }
  PipelineTiming timing;
  timing.seconds = best;
  timing.docs_per_sec = static_cast<double>(pages.size()) / best;
  return timing;
}

// Token-sized texts from the corpus, the matcher's real workload.
std::vector<std::string> MatcherWorkload(size_t documents) {
  std::vector<std::string> texts;
  for (size_t i = 0; i < documents; ++i) {
    auto tree = webre::ParseHtml(webre::GenerateResume(i).html);
    webre::TidyHtmlTree(tree.get());
    tree->PreOrder([&](const webre::Node& n) {
      if (!n.is_text()) return;
      for (std::string& piece :
           webre::SplitAny(n.text(), ";:,", /*keep_empty=*/false)) {
        texts.push_back(std::move(piece));
      }
    });
  }
  return texts;
}

}  // namespace

int main() {
  webre::ConceptSet concepts = webre::ResumeConcepts();
  webre::ConstraintSet constraints = webre::ResumeConstraints();
  webre::SynonymRecognizer recognizer(&concepts);
  NaiveSynonymRecognizer naive_recognizer(&concepts);
  webre::DocumentConverter converter(&concepts, &recognizer, &constraints);

  // -------------------------------------------------------------------
  // Figure 5: linearity of conversion + discovery in concept nodes.
  const std::vector<size_t> dataset_sizes = {20, 50, 95, 190, 380};
  std::vector<std::string> pages;
  for (size_t i = 0; i < dataset_sizes.back(); ++i) {
    pages.push_back(webre::GenerateResume(i).html);
  }

  std::printf("== Figure 5 / Section 4.3: scalability ==\n");
  std::printf("%8s %12s %14s %12s %14s %18s\n", "docs", "nodes",
              "concept nodes", "time (ms)", "ms/doc",
              "us/concept node");

  std::vector<double> xs;  // concept nodes
  std::vector<double> ys;  // seconds
  for (size_t size : dataset_sizes) {
    const double start = Now();
    webre::MiningOptions options;
    options.constraints = &constraints;
    webre::FrequentPathMiner miner(options);
    size_t total_nodes = 0;
    size_t concept_nodes = 0;
    for (size_t i = 0; i < size; ++i) {
      webre::ConvertStats stats;
      auto doc = converter.Convert(pages[i], &stats);
      miner.AddDocument(*doc);
      total_nodes += doc->SubtreeSize();
      concept_nodes += stats.concept_nodes;
    }
    miner.Discover();
    const double elapsed = Now() - start;
    xs.push_back(static_cast<double>(concept_nodes));
    ys.push_back(elapsed);
    std::printf("%8zu %12zu %14zu %12.1f %14.3f %18.2f\n", size,
                total_nodes, concept_nodes, elapsed * 1e3,
                elapsed * 1e3 / static_cast<double>(size),
                elapsed * 1e6 / static_cast<double>(concept_nodes));
  }

  // R^2 of time ~ concept nodes (through-origin least squares).
  double sxy = 0.0;
  double sxx = 0.0;
  for (size_t i = 0; i < xs.size(); ++i) {
    sxy += xs[i] * ys[i];
    sxx += xs[i] * xs[i];
  }
  const double slope = sxy / sxx;
  double ss_res = 0.0;
  double ss_tot = 0.0;
  double mean_y = 0.0;
  for (double y : ys) mean_y += y;
  mean_y /= static_cast<double>(ys.size());
  for (size_t i = 0; i < xs.size(); ++i) {
    const double err = ys[i] - slope * xs[i];
    ss_res += err * err;
    ss_tot += (ys[i] - mean_y) * (ys[i] - mean_y);
  }
  const double r_squared = 1.0 - ss_res / ss_tot;
  std::printf("\nlinearity of time vs concept nodes: R^2 = %.4f "
              "(paper: \"very strong linear relationship\")\n",
              r_squared);

  // -------------------------------------------------------------------
  // End-to-end pipeline throughput on a 500-document corpus:
  //   seed baseline (naive matcher, 1 thread)
  //   serial        (automaton matcher, 1 thread)
  //   parallel      (automaton matcher, 8 threads)
  const size_t corpus_size = 500;
  const size_t parallel_threads = 8;
  std::vector<std::string> corpus;
  for (size_t i = 0; i < corpus_size; ++i) {
    corpus.push_back(webre::GenerateResume(i).html);
  }

  std::printf("\n== end-to-end pipeline, %zu documents ==\n", corpus_size);
  const PipelineTiming seed_baseline =
      TimePipeline(concepts, naive_recognizer, constraints, corpus, 1);
  const PipelineTiming serial =
      TimePipeline(concepts, recognizer, constraints, corpus, 1);
  const PipelineTiming parallel = TimePipeline(concepts, recognizer,
                                               constraints, corpus,
                                               parallel_threads);
  const double pipeline_speedup = seed_baseline.seconds / parallel.seconds;
  std::printf("%-34s %10.1f docs/sec (%.1f ms)\n",
              "seed baseline (naive, 1 thread):",
              seed_baseline.docs_per_sec, seed_baseline.seconds * 1e3);
  std::printf("%-34s %10.1f docs/sec (%.1f ms)\n",
              "automaton matcher, 1 thread:", serial.docs_per_sec,
              serial.seconds * 1e3);
  std::printf("%-34s %10.1f docs/sec (%.1f ms)\n",
              ("automaton matcher, " + std::to_string(parallel_threads) +
               " threads:")
                  .c_str(),
              parallel.docs_per_sec, parallel.seconds * 1e3);
  std::printf("end-to-end speedup vs seed baseline: %.2fx "
              "(%zu hardware threads available)\n",
              pipeline_speedup, webre::DefaultThreadCount());

  // -------------------------------------------------------------------
  // Observability: per-stage breakdown of one instrumented run, and the
  // cost of instrumentation (metrics + trace on vs. off, same corpus).
  // The two arms are interleaved round-robin and each takes its own
  // minimum, so clock-speed drift and noisy neighbours hit both equally
  // instead of biasing whichever arm ran later (DESIGN.md §10).
  double plain_best = 1e18;
  double observed_best = 1e18;
  {
    webre::PipelineOptions plain_options;
    plain_options.parallel.num_threads = 1;
    webre::Pipeline plain(&concepts, &recognizer, &constraints,
                          plain_options);
    for (int round = 0; round < 7; ++round) {
      // Each arm's result lives in its own scope so its (substantial)
      // destruction never lands inside the other arm's timed region.
      {
        const double start = Now();
        webre::PipelineResult result = plain.Run(corpus);
        plain_best = std::min(plain_best, Now() - start);
        if (result.schema.empty()) std::fprintf(stderr, "empty schema?!\n");
      }
      {
        webre::obs::PipelineMetrics round_metrics;
        webre::obs::TraceCollector round_trace;
        webre::PipelineOptions observed_options;
        observed_options.parallel.num_threads = 1;
        observed_options.metrics = &round_metrics;
        observed_options.trace = &round_trace;
        webre::Pipeline observed(&concepts, &recognizer, &constraints,
                                 observed_options);
        const double start = Now();
        webre::PipelineResult result = observed.Run(corpus);
        observed_best = std::min(observed_best, Now() - start);
        if (result.schema.empty()) std::fprintf(stderr, "empty schema?!\n");
      }
    }
  }
  const double overhead_pct = (observed_best / plain_best - 1.0) * 100.0;

  // One instrumented parallel run for the per-stage breakdown.
  webre::obs::PipelineMetrics parallel_metrics;
  TimePipeline(concepts, recognizer, constraints, corpus, parallel_threads,
               &parallel_metrics);
  const webre::obs::PipelineMetricsSnapshot stage_snapshot =
      parallel_metrics.Snapshot();

  std::printf("\n== observability (metrics + trace on) ==\n");
  std::printf("overhead (serial, interleaved best-of-7): %+.2f%% "
              "(%.1f ms -> %.1f ms)\n",
              overhead_pct, plain_best * 1e3, observed_best * 1e3);
  std::printf("per-stage wall time, %zu threads (3 rounds summed):\n",
              parallel_threads);
  for (const webre::obs::StageSnapshot& stage : stage_snapshot.stages) {
    if (stage.calls == 0) continue;
    std::printf("  %-12s %10.2f ms (%zu calls)\n", stage.name,
                stage.wall_ms(), static_cast<size_t>(stage.calls));
  }

  // -------------------------------------------------------------------
  // Matcher micro-bench: MatchAll (automaton) vs MatchAllNaive on the
  // real token workload of 200 documents.
  const std::vector<std::string> workload = MatcherWorkload(200);
  size_t matched = 0;
  double naive_seconds = 1e18;
  double automaton_seconds = 1e18;
  for (int round = 0; round < 3; ++round) {
    double start = Now();
    size_t count = 0;
    for (const std::string& text : workload) {
      count += concepts.MatchAllNaive(text).size();
    }
    naive_seconds = std::min(naive_seconds, Now() - start);
    start = Now();
    matched = 0;
    for (const std::string& text : workload) {
      matched += concepts.MatchAll(text).size();
    }
    automaton_seconds = std::min(automaton_seconds, Now() - start);
    if (count != matched) {
      std::fprintf(stderr, "matcher divergence: %zu vs %zu\n", count,
                   matched);
      return 1;
    }
  }
  const double matcher_speedup = naive_seconds / automaton_seconds;
  std::printf("\n== concept matching, %zu instances, %zu texts ==\n",
              concepts.TotalInstanceCount(), workload.size());
  std::printf("naive rescan:      %8.3f us/text\n",
              naive_seconds * 1e6 / static_cast<double>(workload.size()));
  std::printf("aho-corasick:      %8.3f us/text (%zu states, %zu patterns)\n",
              automaton_seconds * 1e6 /
                  static_cast<double>(workload.size()),
              concepts.matcher()->state_count(),
              concepts.matcher()->pattern_count());
  std::printf("matcher speedup:   %8.2fx (%zu matches)\n", matcher_speedup,
              matched);

  // -------------------------------------------------------------------
  // Machine-readable trajectory record.
  FILE* json = std::fopen("BENCH_scalability.json", "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_scalability.json\n");
    return 1;
  }
  std::fprintf(json, "{\n");
  std::fprintf(json, "  \"figure5_r_squared\": %.6f,\n", r_squared);
  std::fprintf(json, "  \"corpus_documents\": %zu,\n", corpus_size);
  std::fprintf(json, "  \"hardware_threads\": %zu,\n",
               webre::DefaultThreadCount());
  std::fprintf(json,
               "  \"pipeline\": {\n"
               "    \"seed_serial_baseline\": {\"seconds\": %.6f, "
               "\"docs_per_sec\": %.2f},\n"
               "    \"serial\": {\"seconds\": %.6f, \"docs_per_sec\": "
               "%.2f},\n"
               "    \"parallel\": {\"threads\": %zu, \"seconds\": %.6f, "
               "\"docs_per_sec\": %.2f},\n"
               "    \"speedup_vs_seed\": %.3f\n"
               "  },\n",
               seed_baseline.seconds, seed_baseline.docs_per_sec,
               serial.seconds, serial.docs_per_sec, parallel_threads,
               parallel.seconds, parallel.docs_per_sec, pipeline_speedup);
  std::fprintf(json,
               "  \"matcher\": {\n"
               "    \"instances\": %zu,\n"
               "    \"patterns\": %zu,\n"
               "    \"automaton_states\": %zu,\n"
               "    \"texts\": %zu,\n"
               "    \"naive_us_per_text\": %.4f,\n"
               "    \"automaton_us_per_text\": %.4f,\n"
               "    \"speedup\": %.3f\n"
               "  },\n",
               concepts.TotalInstanceCount(),
               concepts.matcher()->pattern_count(),
               concepts.matcher()->state_count(), workload.size(),
               naive_seconds * 1e6 / static_cast<double>(workload.size()),
               automaton_seconds * 1e6 /
                   static_cast<double>(workload.size()),
               matcher_speedup);
  std::fprintf(json,
               "  \"observability\": {\n"
               "    \"serial_overhead_pct\": %.3f,\n"
               "    \"plain_seconds\": %.6f,\n"
               "    \"observed_seconds\": %.6f,\n"
               "    \"stages\": [\n",
               overhead_pct, plain_best, observed_best);
  bool first_stage = true;
  for (const webre::obs::StageSnapshot& stage : stage_snapshot.stages) {
    if (stage.calls == 0) continue;
    std::fprintf(json,
                 "%s      {\"name\": \"%s\", \"calls\": %zu, "
                 "\"wall_ms\": %.3f}",
                 first_stage ? "" : ",\n", stage.name,
                 static_cast<size_t>(stage.calls), stage.wall_ms());
    first_stage = false;
  }
  std::fprintf(json, "\n    ]\n  }\n");
  std::fprintf(json, "}\n");
  std::fclose(json);
  std::printf("\nwrote BENCH_scalability.json\n");
  return 0;
}
