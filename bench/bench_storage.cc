// Durable-storage bench: what a snapshot buys, and what the WAL costs.
//
// Arms, all over the same generated resume corpus:
//   cold_reconvert       — the no-snapshot recovery path: re-convert
//                          every HTML page through the full pipeline
//                          and re-admit the trees into a repository.
//   mmap_open            — DurableRepository::Open over a checkpointed
//                          data directory: mmap + validation + summary
//                          restore, no parsing (the tentpole claim:
//                          near-zero warmup, storage.mmap_hits == docs).
//   wal_append_none      — durable Add with --wal-sync=none, vs
//   wal_append_fdatasync — durable Add with fdatasync before each ack,
//                          bounding the WAL's per-document overhead at
//                          both sync levels.
//
// The binary asserts the cold and mmap repositories agree on every
// probe query's match count before printing, so a snapshot that loses
// or mangles documents fails the bench rather than flattering it.
//
// Prints one JSON object (corpus, arms, derived ratios) to stdout; the
// checked-in BENCH_storage.json is a captured full run. ci/bench_smoke.sh
// replays a tiny corpus through this binary, validates both records,
// and asserts the artifact's open_speedup floor (>= 10x at 4000 docs).
//
// Usage: bench_storage [--docs=N] [--shards=N] [--reps=N]

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "concepts/resume_domain.h"
#include "core/pipeline.h"
#include "corpus/resume_generator.h"
#include "repository/repository.h"
#include "restructure/recognizer.h"
#include "storage/durable_repository.h"
#include "xml/node.h"

namespace {

struct Flags {
  size_t docs = 4000;
  size_t shards = 4;
  size_t reps = 5;
};

Flags ParseFlags(int argc, char** argv) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--docs=", 0) == 0) {
      flags.docs = std::strtoull(arg.c_str() + 7, nullptr, 10);
    } else if (arg.rfind("--shards=", 0) == 0) {
      flags.shards = std::strtoull(arg.c_str() + 9, nullptr, 10);
    } else if (arg.rfind("--reps=", 0) == 0) {
      flags.reps = std::strtoull(arg.c_str() + 7, nullptr, 10);
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      std::exit(2);
    }
  }
  if (flags.docs == 0 || flags.reps == 0) {
    std::fprintf(stderr, "--docs and --reps must be positive\n");
    std::exit(2);
  }
  return flags;
}

double Seconds(std::chrono::steady_clock::time_point start,
               std::chrono::steady_clock::time_point stop) {
  return std::chrono::duration<double>(stop - start).count();
}

const char* const kProbes[] = {
    "/resume/EDUCATION/DATE",
    "//LANGUAGE",
    "//*[val~\"seattle\"]",
};

size_t ProbeMatches(const webre::XmlRepository& repo) {
  size_t total = 0;
  for (const char* probe : kProbes) {
    auto matches = repo.Query(probe);
    if (!matches.ok()) {
      std::fprintf(stderr, "probe query failed: %s\n",
                   matches.status().message().c_str());
      std::exit(1);
    }
    total += matches->size();
  }
  return total;
}

// Converts the corpus once; the result's trees/arenas are consumed by
// whichever arm runs next, so each caller converts its own copy.
webre::PipelineResult Convert(const std::vector<std::string>& pages,
                              const webre::ConceptSet& concepts,
                              const webre::SynonymRecognizer& recognizer,
                              const webre::ConstraintSet& constraints) {
  webre::PipelineOptions options;
  options.parallel.num_threads = 1;
  webre::Pipeline pipeline(&concepts, &recognizer, &constraints, options);
  webre::PipelineResult result = pipeline.Run(pages);
  if (result.failed_documents != 0) {
    std::fprintf(stderr, "%zu documents failed to convert\n",
                 result.failed_documents);
    std::exit(1);
  }
  return result;
}

std::string ScratchDir(const char* tag) {
  std::string tmpl = std::string("/tmp/bench_storage_") + tag + "_XXXXXX";
  std::vector<char> buf(tmpl.begin(), tmpl.end());
  buf.push_back('\0');
  if (::mkdtemp(buf.data()) == nullptr) {
    std::perror("mkdtemp");
    std::exit(1);
  }
  return std::string(buf.data());
}

void RemoveTree(const std::string& dir) {
  (void)::system(("rm -rf '" + dir + "'").c_str());
}

// Timed durable ingest of a freshly converted corpus; returns seconds.
double DurableIngest(const std::string& dir, const Flags& flags,
                     webre::storage::WalSyncMode sync,
                     webre::PipelineResult result) {
  webre::storage::DurableOptions options;
  options.repository.num_shards = flags.shards;
  options.repository.query_threads = 1;
  options.wal_sync = sync;
  auto durable = webre::storage::DurableRepository::Open(dir, options);
  if (!durable.ok()) {
    std::fprintf(stderr, "durable open failed: %s\n",
                 durable.status().message().c_str());
    std::exit(1);
  }
  const auto start = std::chrono::steady_clock::now();
  for (size_t i = 0; i < result.documents.size(); ++i) {
    std::shared_ptr<webre::NodeArena> arena =
        i < result.arenas.size() ? result.arenas[i] : nullptr;
    if (!(*durable)
             ->Add(std::move(result.documents[i]), std::move(arena))
             .ok()) {
      std::fprintf(stderr, "durable add rejected document %zu\n", i);
      std::exit(1);
    }
  }
  return Seconds(start, std::chrono::steady_clock::now());
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags = ParseFlags(argc, argv);

  std::vector<std::string> pages;
  size_t input_bytes = 0;
  for (size_t i = 0; i < flags.docs; ++i) {
    pages.push_back(webre::GenerateResume(i).html);
    input_bytes += pages.back().size();
  }

  const webre::ConceptSet concepts = webre::ResumeConcepts();
  const webre::ConstraintSet constraints = webre::ResumeConstraints();
  const webre::SynonymRecognizer recognizer(&concepts);

  // Warmup: global tables (interner, tag tables, synonym automaton).
  {
    std::vector<std::string> warm(
        pages.begin(),
        pages.begin() + static_cast<long>(std::min<size_t>(8, pages.size())));
    (void)Convert(warm, concepts, recognizer, constraints);
  }

  // ---- wal_append arms (each also leaves a directory; the kNone one
  // becomes the checkpointed directory the mmap arm opens). ----
  const std::string wal_dir = ScratchDir("wal");
  const double wal_none_seconds =
      DurableIngest(wal_dir, flags, webre::storage::WalSyncMode::kNone,
                    Convert(pages, concepts, recognizer, constraints));

  const std::string sync_dir = ScratchDir("sync");
  const double wal_sync_seconds =
      DurableIngest(sync_dir, flags, webre::storage::WalSyncMode::kFdatasync,
                    Convert(pages, concepts, recognizer, constraints));
  RemoveTree(sync_dir);

  // ---- cold_reconvert arm: pipeline + plain repository admission, the
  // whole path a process without a snapshot must repeat. ----
  size_t cold_matches = 0;
  double cold_seconds = 0;
  {
    const auto start = std::chrono::steady_clock::now();
    webre::PipelineResult result =
        Convert(pages, concepts, recognizer, constraints);
    webre::RepositoryOptions repo_options;
    repo_options.num_shards = flags.shards;
    repo_options.query_threads = 1;
    webre::XmlRepository repo(repo_options);
    for (size_t i = 0; i < result.documents.size(); ++i) {
      std::shared_ptr<webre::NodeArena> arena =
          i < result.arenas.size() ? result.arenas[i] : nullptr;
      if (!repo.Add(std::move(result.documents[i]), std::move(arena)).ok()) {
        std::fprintf(stderr, "repository rejected document %zu\n", i);
        return 1;
      }
    }
    cold_seconds = Seconds(start, std::chrono::steady_clock::now());
    cold_matches = ProbeMatches(repo);
  }

  // ---- mmap_open arm: checkpoint once, then time reopens. ----
  double open_seconds = 0;
  uint64_t mmap_hits = 0;
  uint64_t snapshot_bytes = 0;
  size_t open_matches = 0;
  {
    webre::storage::DurableOptions options;
    options.repository.num_shards = flags.shards;
    options.repository.query_threads = 1;
    {
      auto durable =
          webre::storage::DurableRepository::Open(wal_dir, options);
      if (!durable.ok() || (*durable)->repo().size() != flags.docs) {
        std::fprintf(stderr, "checkpoint source reopen failed\n");
        return 1;
      }
      if (!(*durable)->Checkpoint().ok()) {
        std::fprintf(stderr, "checkpoint failed\n");
        return 1;
      }
    }

    for (size_t rep = 0; rep < flags.reps; ++rep) {
      const auto start = std::chrono::steady_clock::now();
      auto reopened =
          webre::storage::DurableRepository::Open(wal_dir, options);
      open_seconds += Seconds(start, std::chrono::steady_clock::now());
      if (!reopened.ok() || (*reopened)->repo().size() != flags.docs) {
        std::fprintf(stderr, "mmap reopen failed\n");
        return 1;
      }
      if (rep == 0) {
        mmap_hits = (*reopened)->stats().mmap_hits;
        snapshot_bytes = (*reopened)->stats().snapshot_bytes;
        open_matches = ProbeMatches((*reopened)->repo());
      }
    }
    open_seconds /= static_cast<double>(flags.reps);
  }
  RemoveTree(wal_dir);

  if (open_matches != cold_matches) {
    std::fprintf(stderr,
                 "ARMS DISAGREE: cold re-convert found %zu probe matches, "
                 "mmap open found %zu\n",
                 cold_matches, open_matches);
    return 1;
  }

  const double docs = static_cast<double>(flags.docs);
  std::printf(
      "{\n"
      "  \"bench\": \"bench_storage\",\n"
      "  \"corpus\": { \"documents\": %zu, \"input_mb\": %.3f, "
      "\"probe_matches\": %zu },\n"
      "  \"arms\": {\n"
      "    \"cold_reconvert\": { \"arm\": \"cold_reconvert\", "
      "\"documents\": %zu, \"seconds\": %.4f, \"docs_per_sec\": %.1f },\n"
      "    \"mmap_open\": { \"arm\": \"mmap_open\", \"documents\": %zu, "
      "\"seconds\": %.6f, \"docs_per_sec\": %.1f, \"mmap_hits\": %llu, "
      "\"snapshot_mb\": %.2f },\n"
      "    \"wal_append_none\": { \"arm\": \"wal_append_none\", "
      "\"documents\": %zu, \"seconds\": %.4f, \"us_per_doc\": %.2f },\n"
      "    \"wal_append_fdatasync\": { \"arm\": \"wal_append_fdatasync\", "
      "\"documents\": %zu, \"seconds\": %.4f, \"us_per_doc\": %.2f }\n"
      "  },\n"
      "  \"derived\": {\n"
      "    \"open_speedup\": %.1f,\n"
      "    \"fdatasync_cost_ratio\": %.2f\n"
      "  }\n"
      "}\n",
      flags.docs, static_cast<double>(input_bytes) / (1024.0 * 1024.0),
      cold_matches,  //
      flags.docs, cold_seconds, docs / cold_seconds,  //
      flags.docs, open_seconds, docs / open_seconds,
      static_cast<unsigned long long>(mmap_hits),
      static_cast<double>(snapshot_bytes) / (1024.0 * 1024.0),  //
      flags.docs, wal_none_seconds, wal_none_seconds / docs * 1e6,  //
      flags.docs, wal_sync_seconds, wal_sync_seconds / docs * 1e6,  //
      cold_seconds / open_seconds, wal_sync_seconds / wal_none_seconds);
  return 0;
}
