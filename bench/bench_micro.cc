// Microbenchmarks (google-benchmark) for the pipeline's hot paths:
// HTML lexing/parsing, the four restructuring rules, path extraction,
// trie insertion + discovery, and tree-edit distance.

#include <benchmark/benchmark.h>

#include "concepts/resume_domain.h"
#include "corpus/resume_generator.h"
#include "html/lexer.h"
#include "html/parser.h"
#include "mapping/tree_edit.h"
#include "repository/repository.h"
#include "restructure/converter.h"
#include "restructure/recognizer.h"
#include "schema/frequent_paths.h"
#include "schema/path_extractor.h"
#include "util/resource_limits.h"

namespace webre {
namespace {

const std::string& SamplePage() {
  static const std::string& page = *new std::string(GenerateResume(0).html);
  return page;
}

struct Env {
  Env()
      : concepts(ResumeConcepts()),
        constraints(ResumeConstraints()),
        recognizer(&concepts),
        converter(&concepts, &recognizer, &constraints) {}

  ConceptSet concepts;
  ConstraintSet constraints;
  SynonymRecognizer recognizer;
  DocumentConverter converter;
};

Env& GetEnv() {
  static Env& env = *new Env();
  return env;
}

void BM_HtmlLex(benchmark::State& state) {
  const std::string& page = SamplePage();
  for (auto _ : state) {
    benchmark::DoNotOptimize(TokenizeHtml(page));
  }
  state.SetBytesProcessed(
      static_cast<int64_t>(state.iterations() * page.size()));
}
BENCHMARK(BM_HtmlLex);

void BM_HtmlParse(benchmark::State& state) {
  const std::string& page = SamplePage();
  for (auto _ : state) {
    benchmark::DoNotOptimize(ParseHtml(page));
  }
  state.SetBytesProcessed(
      static_cast<int64_t>(state.iterations() * page.size()));
}
BENCHMARK(BM_HtmlParse);

// Guarded parse (explicit ResourceBudget with default caps) against the
// lenient BM_HtmlParse above: the delta is the whole cost of resource
// accounting on the hot path.
void BM_HtmlParseGuarded(benchmark::State& state) {
  const std::string& page = SamplePage();
  const ResourceLimits limits;
  for (auto _ : state) {
    ResourceBudget budget(limits);
    benchmark::DoNotOptimize(ParseHtml(page, HtmlParseOptions{}, budget));
  }
  state.SetBytesProcessed(
      static_cast<int64_t>(state.iterations() * page.size()));
}
BENCHMARK(BM_HtmlParseGuarded);

void BM_ConvertDocument(benchmark::State& state) {
  Env& env = GetEnv();
  const std::string& page = SamplePage();
  for (auto _ : state) {
    benchmark::DoNotOptimize(env.converter.Convert(page));
  }
}
BENCHMARK(BM_ConvertDocument);

// Fault-isolated conversion (TryConvert under default limits) against
// the lenient BM_ConvertDocument: measures the per-document price of
// the guards end to end.
void BM_ConvertDocumentGuarded(benchmark::State& state) {
  Env& env = GetEnv();
  const std::string& page = SamplePage();
  for (auto _ : state) {
    benchmark::DoNotOptimize(env.converter.TryConvert(page));
  }
}
BENCHMARK(BM_ConvertDocumentGuarded);

void BM_ConceptMatch(benchmark::State& state) {
  Env& env = GetEnv();
  const std::string token =
      "University of Wisconsin at Madison, B.S.(Computer Science), "
      "June 1996, GPA 3.8/4.0";
  for (auto _ : state) {
    benchmark::DoNotOptimize(env.concepts.MatchAll(token));
  }
}
BENCHMARK(BM_ConceptMatch);

void BM_PathExtraction(benchmark::State& state) {
  Env& env = GetEnv();
  auto doc = env.converter.Convert(SamplePage());
  for (auto _ : state) {
    benchmark::DoNotOptimize(ExtractPaths(*doc));
  }
}
BENCHMARK(BM_PathExtraction);

void BM_SchemaDiscovery(benchmark::State& state) {
  Env& env = GetEnv();
  const size_t num_docs = static_cast<size_t>(state.range(0));
  std::vector<DocumentPaths> extracted;
  for (size_t i = 0; i < num_docs; ++i) {
    auto doc = env.converter.Convert(GenerateResume(i).html);
    extracted.push_back(ExtractPaths(*doc));
  }
  for (auto _ : state) {
    MiningOptions options;
    options.constraints = &env.constraints;
    FrequentPathMiner miner(options);
    for (const DocumentPaths& paths : extracted) {
      miner.AddDocumentPaths(paths);
    }
    benchmark::DoNotOptimize(miner.Discover());
  }
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations() * num_docs));
}
BENCHMARK(BM_SchemaDiscovery)->Arg(10)->Arg(50)->Arg(200);

XmlRepository& LoadedRepository(size_t docs) {
  static std::map<size_t, XmlRepository>& repos =
      *new std::map<size_t, XmlRepository>();
  XmlRepository& repo = repos[docs];
  if (repo.size() == 0) {
    Env& env = GetEnv();
    for (size_t i = 0; i < docs; ++i) {
      repo.Add(env.converter.Convert(GenerateResume(i).html)).value();
    }
  }
  return repo;
}

void BM_RepositoryIndexedQuery(benchmark::State& state) {
  XmlRepository& repo = LoadedRepository(static_cast<size_t>(state.range(0)));
  auto query = PathQuery::Parse("/resume/EDUCATION/DATE/INSTITUTION");
  for (auto _ : state) {
    benchmark::DoNotOptimize(repo.Query(*query));
  }
}
BENCHMARK(BM_RepositoryIndexedQuery)->Arg(50)->Arg(400);

void BM_RepositoryScanQuery(benchmark::State& state) {
  XmlRepository& repo = LoadedRepository(static_cast<size_t>(state.range(0)));
  auto query = PathQuery::Parse("//DATE[val~\"1996\"]");
  for (auto _ : state) {
    benchmark::DoNotOptimize(repo.Query(*query));
  }
}
BENCHMARK(BM_RepositoryScanQuery)->Arg(50)->Arg(400);

void BM_TreeEditDistance(benchmark::State& state) {
  Env& env = GetEnv();
  auto a = env.converter.Convert(GenerateResume(0).html);
  auto b = env.converter.Convert(GenerateResume(1).html);
  for (auto _ : state) {
    benchmark::DoNotOptimize(TreeEditDistance(*a, *b));
  }
}
BENCHMARK(BM_TreeEditDistance);

}  // namespace
}  // namespace webre

BENCHMARK_MAIN();
