// Reproduces §4.4: the sample run — schema discovery over 1400+ resume
// documents, yielding a DTD that "agrees with common sense of how a
// schema for resume documents should look like". The paper's fragment
// (20 elements total discovered):
//
//   <!ELEMENT resume ((#PCDATA), contact+, objective, education+,
//                     courses, experience+, awards, skills,
//                     activities+, reference)>
//   <!ELEMENT contact (#PCDATA)>
//   <!ELEMENT objective (#PCDATA)>
//   <!ELEMENT education ((#PCDATA), institute, date-entry))>
//   ...
//
// We run the full pipeline over 1400 generated resumes and print the
// discovered majority schema and derived DTD for manual comparison.

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "concepts/resume_domain.h"
#include "core/pipeline.h"
#include "corpus/resume_generator.h"
#include "restructure/recognizer.h"
#include "schema/sequence_patterns.h"
#include "schema/unify.h"

int main(int argc, char** argv) {
  size_t num_docs = 1400;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--docs=", 7) == 0) {
      num_docs = std::strtoul(argv[i] + 7, nullptr, 10);
    }
  }

  webre::ConceptSet concepts = webre::ResumeConcepts();
  webre::ConstraintSet constraints = webre::ResumeConstraints();
  webre::SynonymRecognizer recognizer(&concepts);

  webre::PipelineOptions options;
  options.mining.sup_threshold = 0.45;
  options.mining.ratio_threshold = 0.4;
  webre::Pipeline pipeline(&concepts, &recognizer, &constraints, options);

  std::vector<std::string> pages;
  pages.reserve(num_docs);
  for (size_t i = 0; i < num_docs; ++i) {
    pages.push_back(webre::GenerateResume(i).html);
  }
  webre::PipelineResult result = pipeline.Run(pages);

  std::printf("== Section 4.4: sample run over %zu documents ==\n",
              num_docs);
  std::printf("frequent paths discovered: %zu (paper: DTD with 20 "
              "elements in total)\n",
              result.schema.NodeCount());
  std::printf("\nmajority schema:\n%s", result.schema.ToString().c_str());
  std::printf("\nderived DTD:\n%s", result.dtd.ToString().c_str());
  std::printf("\nconforming documents without mapping: %zu / %zu\n",
              result.conforming_before, result.documents.size());

  // Identification-ratio feedback (§2.3.1's user feedback metric).
  double identified = 0.0;
  double tokens = 0.0;
  for (const webre::ConvertStats& stats : result.convert_stats) {
    identified += static_cast<double>(stats.instance.tokens_identified);
    tokens += static_cast<double>(stats.instance.tokens_total);
  }
  std::printf("token identification ratio across corpus: %.1f%%\n",
              100.0 * identified / tokens);

  // Threshold sensitivity: how selective the majority schema is as
  // supThreshold moves between the lower-bound and Data-Guide extremes
  // (§1's "between the two extremes" positioning).
  {
    webre::MiningOptions mining;
    mining.constraints = &constraints;
    webre::FrequentPathMiner miner(mining);
    for (const auto& doc : result.documents) miner.AddDocument(*doc);
    std::printf("\nthreshold sensitivity (ratioThreshold=0.4):\n");
    std::printf("  %12s %16s\n", "supThreshold", "frequent paths");
    for (double threshold : {0.05, 0.2, 0.35, 0.45, 0.6, 0.8, 0.95}) {
      miner.mutable_options().sup_threshold = threshold;
      miner.mutable_options().ratio_threshold = 0.4;
      std::printf("  %12.2f %16zu\n", threshold,
                  miner.Discover().NodeCount());
    }
  }

  // Repetitive structures of the general (e1,e2)* kind (§3.3 /
  // Xtract): detected from the child sequences at each section path.
  std::printf("\nrepeating child groups (sequence patterns):\n");
  for (const char* section : {"EDUCATION", "EXPERIENCE", "SKILLS",
                              "COURSES"}) {
    std::vector<std::vector<std::string>> sequences;
    for (const auto& doc : result.documents) {
      for (auto& s :
           webre::CollectChildSequences(*doc, {"resume", section})) {
        if (!s.empty()) sequences.push_back(std::move(s));
      }
    }
    auto pattern = webre::DetectRepeatingGroup(sequences);
    if (pattern.has_value()) {
      std::printf("  %-12s %-28s coverage %.0f%%, avg %.1f repeats\n",
                  section, pattern->ToString().c_str(),
                  100.0 * pattern->coverage, pattern->avg_repeats);
    } else {
      std::printf("  %-12s (no dominant repeating group)\n", section);
    }
  }

  // Unification ([13]'s optional step): share structures across homonym
  // positions, then re-derive the DTD.
  webre::MajoritySchema unified = result.schema;
  webre::UnificationReport unification = webre::UnifySchema(unified);
  if (!unification.unified.empty()) {
    std::printf("\nafter structure unification:\n");
    for (const webre::UnifiedGroup& group : unification.unified) {
      std::printf("  unified %zu occurrences of <%s> (similarity %.2f, "
                  "%zu children)\n",
                  group.occurrences, group.label.c_str(), group.similarity,
                  group.merged_children);
    }
    webre::Dtd unified_dtd = webre::BuildDtd(unified);
    std::printf("%s", unified_dtd.ToString().c_str());
  } else {
    std::printf("\nstructure unification: nothing to unify\n");
  }
  return 0;
}
