// Query-serving bench: before/after arms over a generated XML corpus.
//
// The "after" arm is the current XmlRepository (sharded storage,
// NameId-keyed structural summary, three-plan query execution over
// frozen FlatDoc blocks). The "after_no_flat" arm is the same
// repository with --no-flat storage (pointer trees), isolating the
// flat representation's contribution. The "before" arm replicates the
// seed serving layer inside this binary — a flat document vector, a
// joined-string path index used only for whole-prefix candidate
// pruning, and per-document tree evaluation with the original
// quadratic frontier dedup — so all arms run in one process over
// identical corpora.
//
// Three workloads are timed per arm:
//   simple    — exact root-to-leaf paths (the summary answers them with
//               zero tree walks);
//   mixed     — descendant steps, wildcards, final and intermediate
//               [val~...] predicates (exercising all three plans);
//   predicate — predicate-heavy, low-selectivity needles (one- and
//               two-byte needles over //* and named paths), the
//               worst case for per-occurrence matching and the best
//               case for the SIMD full-pool sweep.
//
// Before timing, the predicate workloads are re-evaluated once at every
// SIMD level the machine supports (scalar/SSE2/AVX2) and the match
// totals must agree byte for byte — a kernel divergence aborts the run.
//
// Prints one JSON object (corpus, both arms, derived speedups) to
// stdout; the checked-in BENCH_query.json is a captured full run plus
// date/build/method keys. ci/bench_smoke.sh runs a tiny corpus through
// this binary and validates both the live output and the artifact.
//
// Usage: bench_query [--docs=N] [--shards=N] [--reps=N]

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "repository/query.h"
#include "repository/repository.h"
#include "schema/label_path.h"
#include "schema/path_extractor.h"
#include "util/rng.h"
#include "util/simd_scan.h"
#include "util/strings.h"
#include "xml/node.h"

namespace {

struct Flags {
  size_t docs = 4000;
  size_t shards = 4;
  size_t reps = 30;
};

Flags ParseFlags(int argc, char** argv) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--docs=", 0) == 0) {
      flags.docs = std::strtoull(arg.c_str() + 7, nullptr, 10);
    } else if (arg.rfind("--shards=", 0) == 0) {
      flags.shards = std::strtoull(arg.c_str() + 9, nullptr, 10);
    } else if (arg.rfind("--reps=", 0) == 0) {
      flags.reps = std::strtoull(arg.c_str() + 7, nullptr, 10);
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      std::exit(2);
    }
  }
  return flags;
}

// ---------------------------------------------------------------------
// Deterministic resume-shaped corpus (plain Rng; no pipeline involved —
// this bench measures serving, not conversion).

const char* const kCities[] = {"Austin", "Boston", "Chicago", "Denver",
                               "Seattle", "Portland", "Atlanta"};
const char* const kCompanies[] = {"Initech", "Globex", "Umbrella",
                                  "Hooli", "Vandelay", "Stark"};
const char* const kTitles[] = {"software engineer", "data analyst",
                               "project manager", "web developer"};
const char* const kSchools[] = {"State University", "Tech Institute",
                                "Community College", "City University"};
const char* const kDegrees[] = {"BS", "MS", "BA", "PhD"};
const char* const kMajors[] = {"computer science", "mathematics",
                               "physics", "economics"};
const char* const kLanguages[] = {"Java", "C++", "Python", "SQL",
                                  "Haskell", "Go", "Perl"};
const char* const kCourses[] = {"algorithms", "databases", "compilers",
                                "networks", "statistics"};

template <size_t N>
const char* Pick(webre::Rng& rng, const char* const (&table)[N]) {
  return table[rng.NextBelow(N)];
}

std::string Year(webre::Rng& rng) {
  return std::to_string(1985 + rng.NextBelow(18));
}

std::unique_ptr<webre::Node> MakeDoc(size_t index) {
  webre::Rng rng(0x9E3779B9u + index);
  std::unique_ptr<webre::Node> root = webre::Node::MakeElement("resume");

  webre::Node* contact = root->AddElement("CONTACT");
  webre::Node* location = contact->AddElement("LOCATION");
  location->set_val(Pick(rng, kCities));
  location->AddElement("PHONE")->set_val(
      "555-" + std::to_string(1000 + rng.NextBelow(9000)));
  if (rng.NextBool(0.7)) {
    location->AddElement("EMAIL")->set_val(
        "person" + std::to_string(index) + "@example.com");
  }
  root->AddElement("OBJECTIVE")->set_val(
      std::string("seeking a position as ") + Pick(rng, kTitles));

  if (rng.NextBool(0.8)) {
    webre::Node* experience = root->AddElement("EXPERIENCE");
    const size_t jobs = 1 + rng.NextBelow(3);
    for (size_t j = 0; j < jobs; ++j) {
      webre::Node* job = experience->AddElement("JOBTITLE");
      job->set_val(Pick(rng, kTitles));
      job->AddElement("COMPANY")->set_val(Pick(rng, kCompanies));
      job->AddElement("LOCATION")->set_val(Pick(rng, kCities));
      job->AddElement("DATE")->set_val(Year(rng));
    }
  }

  webre::Node* education = root->AddElement("EDUCATION");
  const size_t degrees = 1 + rng.NextBelow(2);
  for (size_t d = 0; d < degrees; ++d) {
    webre::Node* date = education->AddElement("DATE");
    date->set_val(Year(rng));
    date->AddElement("INSTITUTION")->set_val(Pick(rng, kSchools));
    date->AddElement("DEGREE")->set_val(Pick(rng, kDegrees));
    date->AddElement("MAJOR")->set_val(Pick(rng, kMajors));
    if (rng.NextBool(0.5)) {
      date->AddElement("GPA")->set_val(
          "3." + std::to_string(rng.NextBelow(10)));
    }
  }

  webre::Node* skills = root->AddElement("SKILLS");
  const size_t languages = 1 + rng.NextBelow(5);
  for (size_t l = 0; l < languages; ++l) {
    skills->AddElement("LANGUAGE")->set_val(Pick(rng, kLanguages));
  }

  webre::Node* courses = root->AddElement("COURSES");
  const size_t taken = 1 + rng.NextBelow(4);
  for (size_t c = 0; c < taken; ++c) {
    courses->AddElement("COURSE")->set_val(Pick(rng, kCourses));
  }
  return root;
}

// ---------------------------------------------------------------------
// "before" arm: the seed serving layer, replicated verbatim (flat
// storage, joined-string path index, quadratic-dedup tree evaluation).

bool SeedStepMatches(const webre::QueryStep& step, const webre::Node& node) {
  if (!node.is_element()) return false;
  if (step.name != "*" && node.name() != step.name) return false;
  if (!step.val_contains.empty() &&
      !webre::ContainsIgnoreCase(node.val(), step.val_contains)) {
    return false;
  }
  return true;
}

void SeedCollectDescendants(const webre::Node& from,
                            const webre::QueryStep& step,
                            std::vector<const webre::Node*>& out) {
  for (size_t i = 0; i < from.child_count(); ++i) {
    const webre::Node* child = from.child(i);
    if (!child->is_element()) continue;
    if (SeedStepMatches(step, *child)) out.push_back(child);
    SeedCollectDescendants(*child, step, out);
  }
}

std::vector<const webre::Node*> SeedEvaluate(const webre::PathQuery& query,
                                             const webre::Node& root) {
  const std::vector<webre::QueryStep>& steps = query.steps();
  std::vector<const webre::Node*> frontier;
  const webre::QueryStep& first = steps[0];
  if (first.descendant) {
    if (SeedStepMatches(first, root)) frontier.push_back(&root);
    SeedCollectDescendants(root, first, frontier);
  } else if (SeedStepMatches(first, root)) {
    frontier.push_back(&root);
  }
  for (size_t s = 1; s < steps.size(); ++s) {
    const webre::QueryStep& step = steps[s];
    std::vector<const webre::Node*> next;
    for (const webre::Node* node : frontier) {
      if (step.descendant) {
        SeedCollectDescendants(*node, step, next);
      } else {
        for (size_t i = 0; i < node->child_count(); ++i) {
          const webre::Node* child = node->child(i);
          if (child->is_element() && SeedStepMatches(step, *child)) {
            next.push_back(child);
          }
        }
      }
    }
    // The seed's linear-scan dedup — O(n^2) in the frontier size.
    std::vector<const webre::Node*> deduped;
    for (const webre::Node* node : next) {
      if (std::find(deduped.begin(), deduped.end(), node) ==
          deduped.end()) {
        deduped.push_back(node);
      }
    }
    frontier = std::move(deduped);
    if (frontier.empty()) break;
  }
  return frontier;
}

class BaselineRepo {
 public:
  void Add(std::unique_ptr<webre::Node> document) {
    const webre::DocId id = docs_.size();
    webre::DocumentPaths paths = webre::ExtractPaths(*document);
    for (const webre::LabelPath& path : paths.paths) {
      index_[webre::JoinLabelPath(path)].push_back(id);
    }
    docs_.push_back(std::move(document));
  }

  size_t size() const { return docs_.size(); }

  std::vector<std::pair<webre::DocId, const webre::Node*>> Query(
      const webre::PathQuery& query) const {
    webre::LabelPath prefix;
    for (const webre::QueryStep& step : query.steps()) {
      if (step.descendant || step.name == "*") break;
      prefix.push_back(step.name);
    }
    std::vector<webre::DocId> candidates;
    if (!prefix.empty()) {
      auto it = index_.find(webre::JoinLabelPath(prefix));
      if (it != index_.end()) candidates = it->second;
    } else {
      candidates.resize(docs_.size());
      for (webre::DocId id = 0; id < docs_.size(); ++id) candidates[id] = id;
    }
    std::vector<std::pair<webre::DocId, const webre::Node*>> matches;
    for (webre::DocId id : candidates) {
      for (const webre::Node* node : SeedEvaluate(query, *docs_[id])) {
        matches.emplace_back(id, node);
      }
    }
    return matches;
  }

 private:
  std::vector<std::unique_ptr<webre::Node>> docs_;
  std::unordered_map<std::string, std::vector<webre::DocId>> index_;
};

// ---------------------------------------------------------------------

double Now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct WorkloadResult {
  double seconds = 0;
  size_t queries = 0;
  size_t matches = 0;

  double qps() const { return seconds > 0 ? queries / seconds : 0; }
};

template <typename Repo>
WorkloadResult RunWorkload(const Repo& repo,
                           const std::vector<webre::PathQuery>& queries,
                           size_t reps) {
  // One untimed pass warms caches and, for the "after" arm, any lazily
  // created fan-out state.
  for (const webre::PathQuery& query : queries) (void)repo.Query(query);
  WorkloadResult result;
  const double begin = Now();
  for (size_t rep = 0; rep < reps; ++rep) {
    for (const webre::PathQuery& query : queries) {
      result.matches += repo.Query(query).size();
      ++result.queries;
    }
  }
  result.seconds = Now() - begin;
  return result;
}

std::vector<webre::PathQuery> ParseAll(
    const std::vector<std::string_view>& texts) {
  std::vector<webre::PathQuery> queries;
  for (std::string_view text : texts) {
    queries.push_back(webre::PathQuery::Parse(text).value());
  }
  return queries;
}

void PrintArm(const char* name, size_t docs, size_t shards,
              const WorkloadResult& simple, const WorkloadResult& mixed,
              const WorkloadResult& predicate, bool trailing_comma) {
  std::printf(
      "    \"%s\": {\n"
      "      \"arm\": \"%s\",\n"
      "      \"documents\": %zu,\n"
      "      \"shards\": %zu,\n"
      "      \"simple_seconds\": %.4f,\n"
      "      \"simple_qps\": %.1f,\n"
      "      \"mixed_seconds\": %.4f,\n"
      "      \"mixed_qps\": %.1f,\n"
      "      \"predicate_seconds\": %.4f,\n"
      "      \"predicate_qps\": %.1f,\n"
      "      \"matches\": %zu\n"
      "    }%s\n",
      name, name, docs, shards, simple.seconds, simple.qps(), mixed.seconds,
      mixed.qps(), predicate.seconds, predicate.qps(),
      simple.matches + mixed.matches + predicate.matches,
      trailing_comma ? "," : "");
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags = ParseFlags(argc, argv);

  // Exact root-to-leaf paths: plan 1 with a single summary path.
  const std::vector<webre::PathQuery> simple = ParseAll({
      "/resume/EDUCATION/DATE",
      "/resume/SKILLS/LANGUAGE",
      "/resume/CONTACT/LOCATION/EMAIL",
      "/resume/EXPERIENCE/JOBTITLE/COMPANY",
  });
  // Descendants, wildcards, predicates: plans 1 (pattern match), 2
  // (summary-seeded) and 3 (scan) all occur.
  const std::vector<webre::PathQuery> mixed = ParseAll({
      "/resume/EDUCATION/DATE",
      "//DATE",
      "//LANGUAGE[val~\"java\"]",
      "/resume/EXPERIENCE//DATE",
      "//LOCATION/*",
      "//*[val~\"1996\"]",
      "/resume/EXPERIENCE/JOBTITLE[val~\"engineer\"]/COMPANY",
  });
  // Predicate-heavy, low-selectivity needles: one- and two-byte needles
  // reject almost no candidate by length and match large fractions of
  // the corpus, so nearly all evaluation time is substring matching —
  // the workload the SIMD pool sweep exists for.
  const std::vector<webre::PathQuery> predicate = ParseAll({
      "//*[val~\"e\"]",
      "//*[val~\"a\"]",
      "//*[val~\"s\"]",
      "//LANGUAGE[val~\"a\"]",
      "//JOBTITLE[val~\"er\"]",
      "//*[val~\"19\"]",
  });

  BaselineRepo before;
  webre::RepositoryOptions options;
  options.num_shards = flags.shards;
  options.query_threads = 1;
  webre::XmlRepository after(options);  // freeze_flat on by default
  webre::RepositoryOptions no_flat_options = options;
  no_flat_options.freeze_flat = false;
  webre::XmlRepository after_no_flat(no_flat_options);
  for (size_t i = 0; i < flags.docs; ++i) {
    before.Add(MakeDoc(i));
    after.Add(MakeDoc(i)).value();
    after_no_flat.Add(MakeDoc(i)).value();
  }

  // Kernel cross-check before any timing: the predicate workloads must
  // produce identical match totals at every SIMD level this machine
  // supports. A divergence means a scanner kernel is wrong, and no
  // number from this run can be trusted.
  {
    const webre::SimdLevel saved = webre::ActiveSimdLevel();
    size_t reference = 0;
    for (int level = 0; level <= static_cast<int>(webre::DetectedSimdLevel());
         ++level) {
      webre::SetSimdLevelForTesting(static_cast<webre::SimdLevel>(level));
      size_t total = 0;
      for (const webre::PathQuery& query : mixed) {
        total += after.Query(query).size();
      }
      for (const webre::PathQuery& query : predicate) {
        total += after.Query(query).size();
      }
      if (level == 0) {
        reference = total;
      } else if (total != reference) {
        std::fprintf(stderr,
                     "FAIL: SIMD level %s disagrees with scalar "
                     "(%zu vs %zu matches)\n",
                     webre::SimdLevelName(
                         static_cast<webre::SimdLevel>(level)),
                     total, reference);
        return 1;
      }
    }
    webre::SetSimdLevelForTesting(saved);
  }

  const WorkloadResult before_simple =
      RunWorkload(before, simple, flags.reps);
  const WorkloadResult before_mixed = RunWorkload(before, mixed, flags.reps);
  const WorkloadResult before_predicate =
      RunWorkload(before, predicate, flags.reps);
  const WorkloadResult after_simple = RunWorkload(after, simple, flags.reps);
  const WorkloadResult after_mixed = RunWorkload(after, mixed, flags.reps);
  const WorkloadResult after_predicate =
      RunWorkload(after, predicate, flags.reps);
  const WorkloadResult no_flat_simple =
      RunWorkload(after_no_flat, simple, flags.reps);
  const WorkloadResult no_flat_mixed =
      RunWorkload(after_no_flat, mixed, flags.reps);
  const WorkloadResult no_flat_predicate =
      RunWorkload(after_no_flat, predicate, flags.reps);

  // All arms see identical corpora, so their match totals must agree;
  // a mismatch means one serving layer is wrong, and no timing from
  // this run can be trusted.
  if (before_simple.matches != after_simple.matches ||
      before_mixed.matches != after_mixed.matches ||
      before_predicate.matches != after_predicate.matches ||
      no_flat_simple.matches != after_simple.matches ||
      no_flat_mixed.matches != after_mixed.matches ||
      no_flat_predicate.matches != after_predicate.matches) {
    std::fprintf(stderr,
                 "FAIL: arms disagree (simple %zu vs %zu vs %zu, mixed "
                 "%zu vs %zu vs %zu, predicate %zu vs %zu vs %zu)\n",
                 before_simple.matches, after_simple.matches,
                 no_flat_simple.matches, before_mixed.matches,
                 after_mixed.matches, no_flat_mixed.matches,
                 before_predicate.matches, after_predicate.matches,
                 no_flat_predicate.matches);
    return 1;
  }

  const webre::RepositoryStats stats = after.Stats();
  std::printf(
      "{\n"
      "  \"bench\": \"bench_query\",\n"
      "  \"corpus\": {\n"
      "    \"generator\": \"bench_query MakeDoc (Rng-driven resumes)\",\n"
      "    \"documents\": %zu,\n"
      "    \"elements\": %zu,\n"
      "    \"distinct_paths\": %zu,\n"
      "    \"reps\": %zu\n"
      "  },\n"
      "  \"arms\": {\n",
      flags.docs, stats.elements, stats.distinct_paths, flags.reps);
  PrintArm("before", flags.docs, 1, before_simple, before_mixed,
           before_predicate, true);
  PrintArm("after", flags.docs, after.num_shards(), after_simple,
           after_mixed, after_predicate, true);
  PrintArm("after_no_flat", flags.docs, after_no_flat.num_shards(),
           no_flat_simple, no_flat_mixed, no_flat_predicate, false);
  std::printf(
      "  },\n"
      "  \"derived\": {\n"
      "    \"simple_speedup\": %.3f,\n"
      "    \"mixed_speedup\": %.3f,\n"
      "    \"predicate_speedup\": %.3f\n"
      "  }\n"
      "}\n",
      after_simple.qps() > 0 ? after_simple.qps() / before_simple.qps() : 0,
      after_mixed.qps() > 0 ? after_mixed.qps() / before_mixed.qps() : 0,
      after_predicate.qps() > 0
          ? after_predicate.qps() / before_predicate.qps()
          : 0);
  return 0;
}
