// Quantifies the paper's §1/§5 claim that schema-guided document mapping
// "is only reasonable by using a majority schema; Data Guides or lower
// bound schemas do not suffice for this task."
//
// For each schema type (majority / Data Guide / lower bound) discovered
// from the same converted corpus, every document is conformed to the
// schema's DTD and the mapping cost (tree edit distance original ->
// conformed) plus information retention (surviving concept elements) is
// reported.

#include <cstdio>

#include "concepts/resume_domain.h"
#include "corpus/resume_generator.h"
#include "mapping/document_mapper.h"
#include "restructure/converter.h"
#include "restructure/recognizer.h"
#include "schema/dtd_builder.h"
#include "schema/frequent_paths.h"

namespace {

size_t ElementCount(const webre::Node& node) {
  size_t count = 0;
  node.PreOrder([&](const webre::Node& n) {
    if (n.is_element()) ++count;
  });
  return count;
}

struct SchemaRow {
  const char* label;
  size_t schema_paths = 0;
  double avg_edit_cost = 0.0;
  double avg_inserted = 0.0;
  double avg_removed = 0.0;
  double retention_pct = 0.0;
  double conform_pct = 0.0;
};

SchemaRow EvaluateSchema(const char* label,
                         const webre::MajoritySchema& schema,
                         const std::vector<std::unique_ptr<webre::Node>>&
                             docs) {
  webre::DtdBuildOptions dtd_options;
  dtd_options.mark_optional = true;
  webre::Dtd dtd = webre::BuildDtd(schema, dtd_options);

  SchemaRow row;
  row.label = label;
  row.schema_paths = schema.NodeCount();
  double retained = 0.0;
  double original = 0.0;
  size_t conforming = 0;
  for (const auto& doc : docs) {
    webre::ConformResult result =
        webre::ConformToSchema(*doc, schema, dtd);
    row.avg_edit_cost += result.report.edit_distance;
    row.avg_inserted += static_cast<double>(result.report.nodes_inserted);
    row.avg_removed += static_cast<double>(result.report.nodes_removed);
    retained += static_cast<double>(ElementCount(*result.document)) -
                static_cast<double>(result.report.nodes_inserted);
    original += static_cast<double>(ElementCount(*doc));
    if (result.report.conforms) ++conforming;
  }
  const double n = static_cast<double>(docs.size());
  row.avg_edit_cost /= n;
  row.avg_inserted /= n;
  row.avg_removed /= n;
  row.retention_pct = 100.0 * retained / original;
  row.conform_pct = 100.0 * static_cast<double>(conforming) / n;
  return row;
}

}  // namespace

int main() {
  const size_t kDocs = 200;
  webre::ConceptSet concepts = webre::ResumeConcepts();
  webre::ConstraintSet constraints = webre::ResumeConstraints();
  webre::SynonymRecognizer recognizer(&concepts);
  webre::DocumentConverter converter(&concepts, &recognizer, &constraints);

  webre::MiningOptions mining;
  mining.constraints = &constraints;
  webre::FrequentPathMiner miner(mining);
  std::vector<std::unique_ptr<webre::Node>> docs;
  for (size_t i = 0; i < kDocs; ++i) {
    docs.push_back(converter.Convert(webre::GenerateResume(i).html));
    miner.AddDocument(*docs.back());
  }

  webre::MajoritySchema majority = miner.Discover();
  webre::MajoritySchema dataguide = webre::DiscoverDataGuide(miner);
  webre::MajoritySchema lower = webre::DiscoverLowerBound(miner);

  std::printf("== Schema-guided mapping cost (%zu documents) ==\n", kDocs);
  std::printf("%-14s %7s %10s %10s %9s %11s %9s\n", "schema", "paths",
              "edit cost", "inserted", "removed", "retention%",
              "conform%");
  for (const SchemaRow& row :
       {EvaluateSchema("majority", majority, docs),
        EvaluateSchema("data guide", dataguide, docs),
        EvaluateSchema("lower bound", lower, docs)}) {
    std::printf("%-14s %7zu %10.1f %10.1f %9.1f %10.1f%% %8.1f%%\n",
                row.label, row.schema_paths, row.avg_edit_cost,
                row.avg_inserted, row.avg_removed, row.retention_pct,
                row.conform_pct);
  }
  std::printf(
      "\nreading: the majority schema pays a small edit cost and keeps "
      "nearly all\ncontent; the lower bound deletes most structure; the "
      "data guide keeps\neverything but degenerates into per-document "
      "shapes (no integration value).\n");
  return 0;
}
