// Reproduces §4.2: effect of concept constraints on the schema-discovery
// search space.
//
// Paper figures: exhaustive enumeration of label paths up to length 4
// over 24 concepts would explore 24^5 - 1 = 7,962,623 nodes; with the
// constraints (11 title names at level 1, 13 content names below, no
// concept twice on a path, max depth 4) the space shrinks to
// 1 + 11 + 11*13 + 11*13*12 = 1,871 nodes (0.023%); without extending
// zero-support nodes, the miner actually explores 73 nodes (0.0009%).

#include <cstdio>

#include "concepts/resume_domain.h"
#include "corpus/resume_generator.h"
#include "restructure/converter.h"
#include "restructure/recognizer.h"
#include "schema/frequent_paths.h"
#include "schema/search_space.h"

int main() {
  webre::ConceptSet concepts = webre::ResumeConcepts();
  webre::ConstraintSet constraints = webre::ResumeConstraints();

  webre::SearchSpaceReport report = webre::AnalyzeSearchSpace(
      concepts, constraints, "resume", /*max_level=*/3);

  std::printf("== Section 4.2: concept constraints & search space ==\n");
  std::printf("concepts:                         %zu (paper: 24)\n",
              report.concept_count);
  std::printf("title / content split:            %zu / %zu (paper: 11/13)\n",
              webre::ResumeTitleConceptNames().size(),
              webre::ResumeContentConceptNames().size());
  std::printf("exhaustive (paper formula 24^5-1): %llu (paper: 7962623)\n",
              static_cast<unsigned long long>(
                  report.exhaustive_paper_formula));
  std::printf("exhaustive enumeration tree:       %llu nodes\n",
              static_cast<unsigned long long>(report.exhaustive_enumerated));
  std::printf("with constraints:                  %llu (paper: 1871)\n",
              static_cast<unsigned long long>(report.constrained));
  std::printf("reduction vs paper formula:        %.4f%% (paper: 0.023%%)\n\n",
              100.0 * static_cast<double>(report.constrained) /
                  static_cast<double>(report.exhaustive_paper_formula));

  // "Without extending nodes with zero support, the actual number of
  // nodes explored is 73": run the miner over a real converted corpus
  // and report its materialized trie size.
  webre::SynonymRecognizer recognizer(&concepts);
  webre::DocumentConverter converter(&concepts, &recognizer, &constraints);
  webre::MiningOptions options;
  options.constraints = &constraints;
  webre::FrequentPathMiner miner(options);
  const size_t num_docs = 380;
  for (size_t i = 0; i < num_docs; ++i) {
    auto doc = converter.Convert(webre::GenerateResume(i).html);
    miner.AddDocument(*doc);
  }
  miner.Discover();
  const webre::MiningStats& stats = miner.stats();
  std::printf("zero-support pruning over %zu converted documents:\n",
              num_docs);
  std::printf("nodes actually explored (trie):    %zu (paper: 73)\n",
              stats.trie_nodes);
  std::printf("  = %.4f%% of the paper-formula space (paper: 0.0009%%)\n",
              100.0 * static_cast<double>(stats.trie_nodes) /
                  static_cast<double>(report.exhaustive_paper_formula));
  std::printf("paths offered / pruned by constraints: %zu / %zu\n",
              stats.paths_offered, stats.paths_pruned_by_constraints);
  return 0;
}
