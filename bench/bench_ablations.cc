// Ablation study over the design choices the paper motivates but does
// not isolate numerically:
//
//   (a) HTML cleansing on/off  — §2.4 claims tidy "can improve the
//       accuracy of resulting XML documents";
//   (b) grouping rule on/off   — §2.3.2's structural core;
//   (c) synonym vs Bayes vs hybrid recognizer — §2.3.1's two
//       implementations of the concept instance rule;
//   (d) concept constraints on/off for consolidation + mining.
//
// Each row reports extraction accuracy over the same generated corpus.

#include <cstdio>

#include "classify/bayes.h"
#include "classify/features.h"
#include "concepts/resume_domain.h"
#include "corpus/resume_generator.h"
#include "restructure/accuracy.h"
#include "restructure/converter.h"
#include "restructure/recognizer.h"
#include "schema/frequent_paths.h"

namespace {

struct Row {
  double avg_errors = 0.0;
  double error_pct = 0.0;
  double identified_ratio = 0.0;
};

Row Evaluate(const webre::DocumentConverter& converter, size_t num_docs) {
  double errors = 0.0;
  double nodes = 0.0;
  double identified = 0.0;
  double tokens = 0.0;
  for (size_t i = 0; i < num_docs; ++i) {
    webre::GeneratedResume resume = webre::GenerateResume(i);
    webre::ConvertStats stats;
    auto xml = converter.Convert(resume.html, &stats);
    webre::AccuracyReport report = webre::CompareTrees(*xml, *resume.truth);
    errors += static_cast<double>(report.logical_errors);
    nodes += static_cast<double>(report.concept_nodes);
    identified += static_cast<double>(stats.instance.tokens_identified);
    tokens += static_cast<double>(stats.instance.tokens_total);
  }
  Row row;
  row.avg_errors = errors / static_cast<double>(num_docs);
  row.error_pct = 100.0 * errors / nodes;
  row.identified_ratio = 100.0 * identified / tokens;
  return row;
}

void Print(const char* label, const Row& row) {
  std::printf("%-34s %10.2f %9.1f%% %12.1f%%\n", label, row.avg_errors,
              row.error_pct, row.identified_ratio);
}

// Trains the Bayes recognizer from the generator's ground truth on a
// disjoint training split (documents 10000+).
webre::BayesClassifier TrainClassifier(size_t train_docs) {
  webre::BayesClassifier classifier;
  for (size_t i = 0; i < train_docs; ++i) {
    webre::GeneratedResume resume = webre::GenerateResume(10000 + i);
    for (const webre::EducationEntry& e : resume.data.education) {
      classifier.AddExample("DATE", webre::ExtractTokenFeatures(e.date));
      classifier.AddExample("INSTITUTION",
                            webre::ExtractTokenFeatures(e.institution));
      classifier.AddExample("DEGREE", webre::ExtractTokenFeatures(e.degree));
      classifier.AddExample("MAJOR", webre::ExtractTokenFeatures(e.major));
      if (!e.gpa.empty()) {
        classifier.AddExample("GPA", webre::ExtractTokenFeatures(e.gpa));
      }
    }
    for (const webre::ExperienceEntry& e : resume.data.experience) {
      classifier.AddExample("DATE",
                            webre::ExtractTokenFeatures(e.date_range));
      classifier.AddExample("COMPANY",
                            webre::ExtractTokenFeatures(e.company));
      classifier.AddExample("JOBTITLE",
                            webre::ExtractTokenFeatures(e.title));
      classifier.AddExample("LOCATION",
                            webre::ExtractTokenFeatures(e.location));
    }
    for (const std::string& s : resume.data.skills) {
      classifier.AddExample("LANGUAGE", webre::ExtractTokenFeatures(s));
    }
    for (const std::string& c : resume.data.courses) {
      classifier.AddExample("COURSE", webre::ExtractTokenFeatures(c));
    }
  }
  return classifier;
}

}  // namespace

int main() {
  const size_t kDocs = 100;
  webre::ConceptSet concepts = webre::ResumeConcepts();
  webre::ConstraintSet constraints = webre::ResumeConstraints();
  webre::SynonymRecognizer synonym(&concepts);

  std::printf("== Ablations (over %zu documents) ==\n", kDocs);
  std::printf("%-34s %10s %10s %13s\n", "configuration", "errs/doc",
              "error%", "identified%");

  {
    webre::DocumentConverter converter(&concepts, &synonym, &constraints);
    Print("baseline (synonym, tidy, grouping)", Evaluate(converter, kDocs));
  }
  {
    webre::ConvertOptions options;
    options.apply_tidy = false;
    webre::DocumentConverter converter(&concepts, &synonym, &constraints,
                                       options);
    Print("  - without HTML cleansing", Evaluate(converter, kDocs));
  }
  {
    webre::ConvertOptions options;
    options.apply_grouping = false;
    webre::DocumentConverter converter(&concepts, &synonym, &constraints,
                                       options);
    Print("  - without grouping rule", Evaluate(converter, kDocs));
  }
  {
    webre::DocumentConverter converter(&concepts, &synonym, nullptr);
    Print("  - without concept constraints", Evaluate(converter, kDocs));
  }
  // (d) constraints matter most on the schema-discovery side (§4.2):
  // compare the mining search space and the discovered schema with and
  // without them over the same converted corpus.
  {
    webre::DocumentConverter converter(&concepts, &synonym, &constraints);
    std::vector<std::unique_ptr<webre::Node>> docs;
    for (size_t i = 0; i < kDocs; ++i) {
      docs.push_back(converter.Convert(webre::GenerateResume(i).html));
    }
    webre::MiningOptions with_options;
    with_options.constraints = &constraints;
    webre::FrequentPathMiner with_miner(with_options);
    webre::FrequentPathMiner without_miner;
    for (const auto& doc : docs) {
      with_miner.AddDocument(*doc);
      without_miner.AddDocument(*doc);
    }
    const size_t with_paths = with_miner.Discover().NodeCount();
    const size_t without_paths = without_miner.Discover().NodeCount();
    std::printf("\nschema discovery over the same corpus (%zu docs):\n",
                kDocs);
    std::printf("  %-28s %14s %16s\n", "configuration", "trie nodes",
                "frequent paths");
    std::printf("  %-28s %14zu %16zu\n", "with constraints",
                with_miner.stats().trie_nodes, with_paths);
    std::printf("  %-28s %14zu %16zu\n", "without constraints",
                without_miner.stats().trie_nodes, without_paths);
  }

  webre::BayesClassifier classifier = TrainClassifier(60);
  {
    webre::BayesRecognizer bayes(&classifier, &concepts, /*min_margin=*/0.5);
    webre::DocumentConverter converter(&concepts, &bayes, &constraints);
    Print("recognizer: Bayes only", Evaluate(converter, kDocs));
  }
  {
    webre::HybridRecognizer hybrid(&concepts, &classifier,
                                   /*min_margin=*/0.5);
    webre::DocumentConverter converter(&concepts, &hybrid, &constraints);
    Print("recognizer: synonym + Bayes hybrid", Evaluate(converter, kDocs));
  }
  return 0;
}
